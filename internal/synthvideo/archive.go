package synthvideo

import (
	"fmt"
	"math"

	"github.com/videodb/hmmm/internal/videomodel"
	"github.com/videodb/hmmm/internal/xrand"
)

// This file generates archive-scale corpora without rendering a single
// raster. The renderer above produces frames whose extracted features
// separate the event classes; at the ROADMAP's million-shot scale,
// rendering and feature extraction dominate the wall clock by orders of
// magnitude, while everything the retrieval stack consumes is just the
// (archive, feature-vector) pair. GenerateArchive therefore samples
// feature vectors directly from per-class centroids with Gaussian
// jitter — the same statistical shape the renderer+extractor pipeline
// produces (class-separated clusters in [0, 1]^K) at a tiny fraction of
// the cost, and bit-reproducible from the seed.

// ArchiveConfig sizes a synthetic archive. The zero value is invalid;
// start from PaperArchive or ScaledArchive.
type ArchiveConfig struct {
	Seed      uint64
	Videos    int
	Shots     int // total shots across the archive
	Annotated int // of which annotated with an event
	// FeatureDim is the length of the per-shot feature vectors (the
	// model's K). 0 means DefaultFeatureDim.
	FeatureDim int
	// Domain selects the event vocabulary and timeline grammar. Nil
	// keeps the legacy soccer generation path bit-for-bit (the scale
	// benchmarks and recall gates pin its exact output); a non-nil
	// domain sequences annotations through the domain's Start/Follow
	// grammar and scales feature jitter by each event's Emphasis.
	Domain *videomodel.Domain
}

// DefaultFeatureDim matches the dimensionality of the Table-1 visual +
// audio feature extractors used at paper scale.
const DefaultFeatureDim = 20

// PaperArchive is the paper's corpus shape: 54 videos, 11,567 shots,
// 506 annotated events.
func PaperArchive(seed uint64) ArchiveConfig {
	return ArchiveConfig{Seed: seed, Videos: 54, Shots: 11567, Annotated: 506}
}

// ScaledArchive scales the paper corpus by factor: shots and annotations
// scale linearly, the video count by √factor (longer videos and more of
// them — a 100× archive has 10× the videos at 10× the length, the shape
// a growing broadcast archive actually takes). factor 1 is PaperArchive.
func ScaledArchive(seed uint64, factor int) ArchiveConfig {
	if factor < 1 {
		factor = 1
	}
	base := PaperArchive(seed)
	base.Videos = int(math.Round(float64(base.Videos) * math.Sqrt(float64(factor))))
	base.Shots *= factor
	base.Annotated *= factor
	return base
}

// GenerateArchive builds a synthetic archive and the feature vectors of
// its annotated shots (the only ones hmmm.Build consumes). Shots and
// annotations are spread evenly across videos; each video draws its
// annotations from a genre-weighted event distribution (a broadcast
// archive's videos are not i.i.d. — a match with one goal tends to have
// more), and each annotated shot's features are its class centroid plus
// Gaussian jitter, clamped to [0, 1]. Deterministic given the config.
func GenerateArchive(cfg ArchiveConfig) (*videomodel.Archive, map[videomodel.ShotID][]float64, error) {
	if cfg.Videos <= 0 || cfg.Shots < cfg.Videos {
		return nil, nil, fmt.Errorf("synthvideo: archive needs >= 1 shot per video, got %d shots / %d videos",
			cfg.Shots, cfg.Videos)
	}
	if cfg.Annotated < 1 || cfg.Annotated > cfg.Shots {
		return nil, nil, fmt.Errorf("synthvideo: %d annotated of %d shots", cfg.Annotated, cfg.Shots)
	}
	k := cfg.FeatureDim
	if k <= 0 {
		k = DefaultFeatureDim
	}

	root := xrand.New(cfg.Seed*6364136223846793005 + 1442695040888963407)
	if cfg.Domain != nil {
		return generateDomainArchive(cfg, cfg.Domain, k, root)
	}

	// Per-class feature centroids, away from the [0, 1] boundary so
	// jitter rarely clamps (clamping would distort the class mean B1').
	centroids := make([][]float64, videomodel.NumEvents)
	crng := root.Fork(0)
	for c := range centroids {
		centroids[c] = make([]float64, k)
		for f := range centroids[c] {
			centroids[c][f] = crng.Range(0.15, 0.85)
		}
	}

	videos := make([]*videomodel.Video, cfg.Videos)
	feats := make(map[videomodel.ShotID][]float64, cfg.Annotated)
	events := videomodel.AllEvents()
	sid := videomodel.ShotID(0)
	for vi := range videos {
		// Even split with the remainder spread over the leading videos.
		nShots := cfg.Shots / cfg.Videos
		if vi < cfg.Shots%cfg.Videos {
			nShots++
		}
		nAnn := cfg.Annotated / cfg.Videos
		if vi < cfg.Annotated%cfg.Videos {
			nAnn++
		}
		if nAnn > nShots {
			nAnn = nShots
		}

		rng := root.Fork(uint64(vi) + 1)
		// Genre weights: two preferred event classes per video dominate
		// its annotations.
		weights := make([]float64, len(events))
		for i := range weights {
			weights[i] = 1
		}
		perm := rng.Perm(len(events))
		weights[perm[0]] = 4
		weights[perm[1]] = 2.5

		v := &videomodel.Video{ID: videomodel.VideoID(vi + 1)}
		// Annotated shots sit at evenly spaced positions so every video
		// has temporal structure for the A1 chain.
		annEvery := 0
		if nAnn > 0 {
			annEvery = nShots / nAnn
		}
		t := 0
		annotated := 0
		for i := 0; i < nShots; i++ {
			dur := 2000 + rng.Intn(6000)
			s := &videomodel.Shot{
				ID: sid, Video: v.ID, Index: i,
				StartMS: t, EndMS: t + dur,
			}
			sid++
			t += dur
			if annEvery > 0 && i%annEvery == 0 && annotated < nAnn {
				e := events[rng.Choice(weights)]
				s.Events = append(s.Events, e)
				if rng.Bool(0.2) {
					alt := events[rng.Choice(weights)]
					if alt != e {
						s.Events = append(s.Events, alt)
					}
				}
				annotated++
				f := make([]float64, k)
				c := centroids[e.Index()]
				for fi := range f {
					f[fi] = clamp01(c[fi] + rng.Norm(0, 0.06))
				}
				feats[s.ID] = f
			}
			v.Shots = append(v.Shots, s)
		}
		videos[vi] = v
	}
	a, err := videomodel.NewArchive(videos)
	if err != nil {
		return nil, nil, fmt.Errorf("synthvideo: %w", err)
	}
	return a, feats, nil
}

// generateDomainArchive is the domain-parameterized generation path: the
// same corpus shape as the legacy soccer path (even shot/annotation
// split, evenly spaced annotated shots, centroid-plus-jitter features)
// but with the annotation sequence driven by the domain's timeline
// grammar — each video's first annotation drawn from the Start weights
// and every following one from Follow[prev] — and the jitter of each
// event scaled by 1/Emphasis, so tight concepts (a news anchor desk)
// cluster harder than loose ones (a commercial).
func generateDomainArchive(cfg ArchiveConfig, d *videomodel.Domain, k int, root *xrand.RNG) (*videomodel.Archive, map[videomodel.ShotID][]float64, error) {
	events := d.AllEvents()
	centroids := make([][]float64, len(events))
	crng := root.Fork(0)
	for c := range centroids {
		centroids[c] = make([]float64, k)
		for f := range centroids[c] {
			centroids[c][f] = crng.Range(0.15, 0.85)
		}
	}

	videos := make([]*videomodel.Video, cfg.Videos)
	feats := make(map[videomodel.ShotID][]float64, cfg.Annotated)
	sid := videomodel.ShotID(0)
	for vi := range videos {
		nShots := cfg.Shots / cfg.Videos
		if vi < cfg.Shots%cfg.Videos {
			nShots++
		}
		nAnn := cfg.Annotated / cfg.Videos
		if vi < cfg.Annotated%cfg.Videos {
			nAnn++
		}
		if nAnn > nShots {
			nAnn = nShots
		}

		rng := root.Fork(uint64(vi) + 1)
		// Genre boost on top of the grammar: two preferred event classes
		// per video, multiplying whatever the grammar proposes.
		boost := make([]float64, len(events))
		for i := range boost {
			boost[i] = 1
		}
		perm := rng.Perm(len(events))
		boost[perm[0]] = 4
		if len(perm) > 1 {
			boost[perm[1]] = 2.5
		}

		weights := make([]float64, len(events))
		pick := func(base []float64) videomodel.Event {
			total := 0.0
			for i := range weights {
				weights[i] = base[i] * boost[i]
				total += weights[i]
			}
			if total == 0 {
				// An all-zero Follow row falls back to the Start weights.
				for i := range weights {
					weights[i] = d.Start[i] * boost[i]
				}
			}
			return events[rng.Choice(weights)]
		}

		v := &videomodel.Video{ID: videomodel.VideoID(vi + 1)}
		annEvery := 0
		if nAnn > 0 {
			annEvery = nShots / nAnn
		}
		t := 0
		annotated := 0
		prev := videomodel.EventNone
		for i := 0; i < nShots; i++ {
			dur := 2000 + rng.Intn(6000)
			s := &videomodel.Shot{
				ID: sid, Video: v.ID, Index: i,
				StartMS: t, EndMS: t + dur,
			}
			sid++
			t += dur
			if annEvery > 0 && i%annEvery == 0 && annotated < nAnn {
				var e videomodel.Event
				if prev == videomodel.EventNone {
					e = pick(d.Start)
				} else {
					e = pick(d.Follow[prev.Index()])
				}
				prev = e
				s.Events = append(s.Events, e)
				if rng.Bool(0.2) {
					alt := pick(d.Follow[e.Index()])
					if alt != e {
						s.Events = append(s.Events, alt)
					}
				}
				annotated++
				f := make([]float64, k)
				c := centroids[e.Index()]
				sigma := 0.06 / d.Spec(e).Emphasis
				for fi := range f {
					f[fi] = clamp01(c[fi] + rng.Norm(0, sigma))
				}
				feats[s.ID] = f
			}
			v.Shots = append(v.Shots, s)
		}
		videos[vi] = v
	}
	a, err := videomodel.NewArchive(videos)
	if err != nil {
		return nil, nil, fmt.Errorf("synthvideo: %w", err)
	}
	return a, feats, nil
}

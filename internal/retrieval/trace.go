package retrieval

import (
	"fmt"
	"io"
	"sync"
)

// TraceEvent is one step of a retrieval's execution, emitted when the
// engine runs with a Tracer: the EXPLAIN ANALYZE view of the Figure-2
// process.
type TraceEvent struct {
	Kind  TraceKind
	Video int     // video index (video-scoped events)
	Stage int     // query stage j (stage-scoped events)
	State int     // global state index (state-scoped events)
	N     int     // candidate / path counts
	Value float64 // weight or score associated with the event
}

// TraceKind enumerates trace event types.
type TraceKind int

// Trace event kinds.
const (
	TraceVideoEnter TraceKind = iota // expanding a level-2 state; N = order position
	TraceStage                       // a lattice stage expanded; N = surviving cells
	TraceHop                         // cross-video continuation; Video = target video
	TraceComplete                    // a candidate sequence completed; Value = SS score
	TraceDeadEnd                     // a video's lattice died before the final stage
	TraceEarlyStop                   // StopAfterMatches threshold reached; N = raw matches collected
)

func (k TraceKind) String() string {
	switch k {
	case TraceVideoEnter:
		return "video-enter"
	case TraceStage:
		return "stage"
	case TraceHop:
		return "hop"
	case TraceComplete:
		return "complete"
	case TraceDeadEnd:
		return "dead-end"
	case TraceEarlyStop:
		return "early-stop"
	default:
		return fmt.Sprintf("trace(%d)", int(k))
	}
}

// Tracer receives trace events during retrieval. Implementations must be
// safe for concurrent use when the engine runs with Parallel > 1.
type Tracer interface {
	Event(TraceEvent)
}

// CollectTracer accumulates events in memory.
type CollectTracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Event implements Tracer.
func (c *CollectTracer) Event(ev TraceEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of the collected events.
func (c *CollectTracer) Events() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TraceEvent(nil), c.events...)
}

// Count returns how many events of the kind were collected.
func (c *CollectTracer) Count(kind TraceKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// WriterTracer renders events as text lines.
type WriterTracer struct {
	mu sync.Mutex
	W  io.Writer
}

// Event implements Tracer.
func (w *WriterTracer) Event(ev TraceEvent) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch ev.Kind {
	case TraceVideoEnter:
		fmt.Fprintf(w.W, "enter video %d (order %d)\n", ev.Video, ev.N)
	case TraceStage:
		fmt.Fprintf(w.W, "  video %d stage %d: %d cells\n", ev.Video, ev.Stage, ev.N)
	case TraceHop:
		fmt.Fprintf(w.W, "  hop -> video %d at stage %d\n", ev.Video, ev.Stage)
	case TraceComplete:
		fmt.Fprintf(w.W, "  complete: state %d score %.5f\n", ev.State, ev.Value)
	case TraceDeadEnd:
		fmt.Fprintf(w.W, "  dead end in video %d at stage %d\n", ev.Video, ev.Stage)
	case TraceEarlyStop:
		fmt.Fprintf(w.W, "early stop after %d raw matches\n", ev.N)
	}
}

// emit sends an event to the configured tracer, if any.
func (e *Engine) emit(ev TraceEvent) {
	if e.opts.Tracer != nil {
		e.opts.Tracer.Event(ev)
	}
}

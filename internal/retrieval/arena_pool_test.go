package retrieval

import (
	"testing"

	"github.com/videodb/hmmm/internal/obs"
	"github.com/videodb/hmmm/internal/videomodel"
)

// TestArenaPoolBounded pins the free list's capacity behavior: checkouts
// beyond the cap allocate (counted), releases beyond the cap drop
// (counted), and the in-use gauge balances back to zero.
func TestArenaPoolBounded(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	e, err := NewEngine(fixtureModel(t), Options{ScratchArenas: 2, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	ars := make([]*arena, 4)
	for i := range ars {
		ars[i] = e.getArena()
	}
	if got := met.ArenaInUse.Value(); got != 4 {
		t.Errorf("in-use = %d after 4 checkouts, want 4", got)
	}
	if got := met.ArenaAlloc.Value(); got != 4 {
		t.Errorf("alloc = %d from an empty pool, want 4", got)
	}
	for _, ar := range ars {
		e.putArena(ar)
	}
	if got := met.ArenaDrop.Value(); got != 2 {
		t.Errorf("drop = %d releasing 4 into cap 2, want 2", got)
	}
	if got := met.ArenaInUse.Value(); got != 0 {
		t.Errorf("in-use = %d after full release, want 0", got)
	}
	a, b := e.getArena(), e.getArena()
	if got := met.ArenaReuse.Value(); got != 2 {
		t.Errorf("reuse = %d from a full pool, want 2", got)
	}
	e.putArena(a)
	e.putArena(b)
	if got := met.ArenaDrop.Value(); got != 2 {
		t.Errorf("drop grew to %d on in-cap releases, want 2", got)
	}
}

// TestArenaPoolRecyclesAcrossRetrievals: after a warm-up query, repeated
// serial retrievals draw scratch from the pool instead of allocating,
// and every checkout is returned.
func TestArenaPoolRecyclesAcrossRetrievals(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	e, err := NewEngine(fixtureModel(t), Options{Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(videomodel.EventFreeKick, videomodel.EventGoal)
	for i := 0; i < 5; i++ {
		if _, err := e.Retrieve(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := met.ArenaAlloc.Value(); got != 1 {
		t.Errorf("alloc = %d over 5 serial retrievals, want 1 (first only)", got)
	}
	if got := met.ArenaReuse.Value(); got != 4 {
		t.Errorf("reuse = %d, want 4", got)
	}
	if got := met.ArenaInUse.Value(); got != 0 {
		t.Errorf("in-use = %d after retrievals finished, want 0", got)
	}
	if got := met.ArenaDrop.Value(); got != 0 {
		t.Errorf("drop = %d with concurrency 1, want 0", got)
	}
}

// TestDefaultScratchArenas: the zero value resolves to a positive cap.
func TestDefaultScratchArenas(t *testing.T) {
	if n := DefaultScratchArenas(); n < 4 {
		t.Errorf("DefaultScratchArenas() = %d, want >= 4", n)
	}
	e, err := NewEngine(fixtureModel(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := cap(e.shared.arenas); c != DefaultScratchArenas() {
		t.Errorf("default pool cap = %d, want %d", c, DefaultScratchArenas())
	}
}

// TestEstimateCost pins the admission-lane cost estimate: deterministic,
// monotone in pattern length, smaller under a single-video scope, and
// much larger when a step must fall back to scanning unannotated states.
func TestEstimateCost(t *testing.T) {
	m := fixtureModel(t)
	e, err := NewEngine(m, Options{AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	one := NewQuery(videomodel.EventGoal)
	two := NewQuery(videomodel.EventFreeKick, videomodel.EventGoal)
	c1, c2 := e.EstimateCost(one), e.EstimateCost(two)
	if c1 <= 0 || c2 <= 0 {
		t.Fatalf("positive costs expected, got %d and %d", c1, c2)
	}
	if c2 <= c1 {
		t.Errorf("two-step cost %d not above one-step cost %d", c2, c1)
	}
	for i := 0; i < 3; i++ {
		if e.EstimateCost(two) != c2 {
			t.Fatal("EstimateCost is not deterministic")
		}
	}

	scoped := two
	scoped.Scope = &Scope{Video: m.VideoIDs[0]}
	if cs := e.EstimateCost(scoped); cs <= 0 || cs >= c2 {
		t.Errorf("scoped cost %d, want in (0, %d)", cs, c2)
	}
	missing := two
	missing.Scope = &Scope{Video: 999}
	if cm := e.EstimateCost(missing); cm != 0 {
		t.Errorf("cost for unknown scoped video = %d, want 0", cm)
	}
	if c := e.EstimateCost(Query{}); c != 0 {
		t.Errorf("cost for empty query = %d, want 0", c)
	}

	// Similarity fallback: without AnnotatedOnly, a concept absent from
	// the annotations makes every state compete, dominating the estimate.
	fb := e.WithOptions(Options{AnnotatedOnly: false})
	rare := NewQuery(videomodel.EventRedCard)
	if cr := fb.EstimateCost(rare); cr <= fb.EstimateCost(one) {
		t.Errorf("fallback cost %d not above annotated cost %d",
			cr, fb.EstimateCost(one))
	}
}

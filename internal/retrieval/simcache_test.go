package retrieval

import (
	"testing"

	"github.com/videodb/hmmm/internal/videomodel"
)

// TestSimCacheBitIdentical checks that every cached sim(s, e) value equals
// the direct Eq. 14 evaluation bit for bit, and that full retrievals under
// the two modes return identical results.
func TestSimCacheBitIdentical(t *testing.T) {
	m := equivModel(t)
	cached, err := NewEngine(m, Options{AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewEngine(m, Options{AnnotatedOnly: true, NoSimCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if cached.shared.sim == nil {
		t.Fatal("cache engine has no similarity table")
	}
	if direct.shared.sim != nil {
		t.Fatal("NoSimCache engine built a similarity table")
	}
	for s := 0; s < m.NumStates(); s++ {
		for ci := 0; ci < m.NumConcepts(); ci++ {
			ev := videomodel.EventFromIndex(ci)
			if c, d := cached.Sim(s, ev), direct.Sim(s, ev); c != d {
				t.Fatalf("sim(%d, %v): cached %v != direct %v", s, ev, c, d)
			}
		}
	}
	q := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	cres, err := cached.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := direct.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, cres, dres)
}

// TestWithOptionsSharesCache checks that per-query option tweaks reuse
// the derived caches and that cache-affecting options force a rebuild.
func TestWithOptionsSharesCache(t *testing.T) {
	m := equivModel(t)
	eng, err := NewEngine(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tuned := eng.WithOptions(Options{TopK: 3, Beam: 1, CrossVideo: true}); tuned.shared != eng.shared {
		t.Error("per-query tuning rebuilt the shared caches")
	}
	if nc := eng.WithOptions(Options{NoSimCache: true}); nc.shared == eng.shared || nc.shared.sim != nil {
		t.Error("NoSimCache view kept the cached table")
	}
	if eps := eng.WithOptions(Options{SimEpsilon: 0.5}); eps.shared == eng.shared {
		t.Error("SimEpsilon change did not rebuild the caches")
	}
}

// TestInvalidateAfterModelMutation checks the staleness contract: after a
// mutation that touches the derived matrices, Invalidate brings the
// engine to the same results as a freshly built one.
func TestInvalidateAfterModelMutation(t *testing.T) {
	m := equivModel(t).Clone()
	eng, err := NewEngine(m, Options{AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stale() {
		t.Fatal("fresh engine reports stale")
	}
	m.RefreshDerived(true)
	if !eng.Stale() {
		t.Fatal("engine not stale after RefreshDerived")
	}
	if err := eng.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if eng.Stale() {
		t.Fatal("engine still stale after Invalidate")
	}
	fresh, err := NewEngine(m, Options{AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	want, err := fresh.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, want, got)
}

package retrieval

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/videomodel"
)

// equivSuite caches a moderate synthetic corpus for the equivalence
// tests: large enough that beams fill, cross-video hops and early
// stopping actually trigger, small enough for -race runs.
var equivSuite struct {
	once  sync.Once
	model *hmmm.Model
	err   error
}

func equivModel(t *testing.T) *hmmm.Model {
	t.Helper()
	equivSuite.once.Do(func() {
		corpus, err := dataset.Build(dataset.Config{
			Seed: 7, Videos: 12, Shots: 600, Annotated: 96, Fast: true,
		})
		if err != nil {
			equivSuite.err = err
			return
		}
		equivSuite.model, equivSuite.err = hmmm.Build(
			corpus.Archive, corpus.Features, hmmm.BuildOptions{LearnP12: true})
	})
	if equivSuite.err != nil {
		t.Fatal(equivSuite.err)
	}
	return equivSuite.model
}

func equivQueries(m *hmmm.Model) []Query {
	qs := []Query{
		NewQuery(videomodel.EventGoal, videomodel.EventFreeKick),
		NewQuery(videomodel.EventCornerKick, videomodel.EventGoal, videomodel.EventFoul),
	}
	scoped := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	scoped.Scope = &Scope{Video: m.VideoIDs[0]}
	qs = append(qs, scoped)
	return qs
}

// mustRetrieve builds an engine and runs the query.
func mustRetrieve(t *testing.T, m *hmmm.Model, opts Options, q Query) *Result {
	t.Helper()
	eng, err := NewEngine(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireEqualResults(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Matches) != len(got.Matches) {
		t.Fatalf("match count: want %d, got %d", len(want.Matches), len(got.Matches))
	}
	for i := range want.Matches {
		w, g := want.Matches[i], got.Matches[i]
		if w.Score != g.Score {
			t.Fatalf("match %d score: want %v, got %v", i, w.Score, g.Score)
		}
		if !reflect.DeepEqual(w.States, g.States) || !reflect.DeepEqual(w.Shots, g.Shots) ||
			!reflect.DeepEqual(w.Videos, g.Videos) || !reflect.DeepEqual(w.Weights, g.Weights) {
			t.Fatalf("match %d differs:\nwant %+v\ngot  %+v", i, w, g)
		}
	}
	if want.Cost != got.Cost {
		t.Fatalf("cost: want %+v, got %+v", want.Cost, got.Cost)
	}
}

// TestParallelEquivalenceMatrix checks the tentpole guarantee: the
// parallel pipeline returns bit-identical matches, scores, and cost
// counters to a serial run across beams, cross-video settings, scopes,
// and — critically — with early stopping enabled, where workers search
// speculatively and results commit in affinity order.
func TestParallelEquivalenceMatrix(t *testing.T) {
	m := equivModel(t)
	for _, beam := range []int{1, 4, 16} {
		for _, cross := range []bool{false, true} {
			for _, stop := range []bool{false, true} {
				for qi, q := range equivQueries(m) {
					name := fmt.Sprintf("beam=%d/cross=%v/stop=%v/q=%d", beam, cross, stop, qi)
					t.Run(name, func(t *testing.T) {
						base := Options{
							TopK: 5, Beam: beam, CrossVideo: cross,
							AnnotatedOnly: true, StopAfterMatches: stop,
						}
						serial := mustRetrieve(t, m, base, q)
						for _, workers := range []int{2, 4} {
							par := base
							par.Parallel = workers
							// Disable the small-work fallback: this corpus is
							// below DefaultMinParallelWork, and the point here
							// is to exercise the pipeline itself.
							par.MinParallelWork = -1
							got := mustRetrieve(t, m, par, q)
							requireEqualResults(t, serial, got)
						}
					})
				}
			}
		}
	}
}

// TestParallelEquivalenceSimilarityMode repeats the core check with the
// unannotated similarity fallback active (AnnotatedOnly off), which
// exercises the dense candidate scan and much larger beams of work.
func TestParallelEquivalenceSimilarityMode(t *testing.T) {
	m := equivModel(t)
	q := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	base := Options{TopK: 5, Beam: 4, CrossVideo: true}
	serial := mustRetrieve(t, m, base, q)
	par := base
	par.Parallel = 4
	par.MinParallelWork = -1
	requireEqualResults(t, serial, mustRetrieve(t, m, par, q))
}

// TestEarlyStopParallelMatchesSerialTopK is the acceptance check from the
// issue: for the paper's goal -> free-kick query, parallel early-stop
// returns the same top-K as serial early-stop.
func TestEarlyStopParallelMatchesSerialTopK(t *testing.T) {
	m := equivModel(t)
	q := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	triggered := false
	for _, topK := range []int{1, 2, 3} {
		base := Options{TopK: topK, Beam: 4, AnnotatedOnly: true, StopAfterMatches: true}
		serial := mustRetrieve(t, m, base, q)
		if len(serial.Matches) == 0 {
			t.Fatal("fixture query returned no matches")
		}
		par := base
		par.Parallel = 4
		par.MinParallelWork = -1
		requireEqualResults(t, serial, mustRetrieve(t, m, par, q))

		full := base
		full.StopAfterMatches = false
		if mustRetrieve(t, m, full, q).Cost.VideosSeen > serial.Cost.VideosSeen {
			triggered = true
		}
	}
	// Early stop must actually stop early for at least one K, or the
	// equivalence above is vacuous.
	if !triggered {
		t.Error("early stop never triggered on this corpus")
	}
}

// TestEarlyStopEmitsTrace checks the TraceEarlyStop event fires exactly
// once in both execution modes when the threshold is crossed.
func TestEarlyStopEmitsTrace(t *testing.T) {
	m := equivModel(t)
	q := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	for _, workers := range []int{0, 4} {
		tracer := &CollectTracer{}
		opts := Options{TopK: 1, Beam: 4, AnnotatedOnly: true, StopAfterMatches: true,
			Parallel: workers, MinParallelWork: -1, Tracer: tracer}
		res := mustRetrieve(t, m, opts, q)
		if res.Cost.VideosSeen == m.NumVideos() {
			t.Skip("early stop did not trigger on this corpus")
		}
		if n := tracer.Count(TraceEarlyStop); n != 1 {
			t.Errorf("workers=%d: %d early-stop events, want 1", workers, n)
		}
	}
}

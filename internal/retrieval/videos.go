package retrieval

import (
	"fmt"
	"math"
	"sort"

	"github.com/videodb/hmmm/internal/videomodel"
)

// VideoRank is one entry of a video-level ranking.
type VideoRank struct {
	VideoIdx int
	VideoID  videomodel.VideoID
	Score    float64
}

// RankVideos scores every video for a temporal pattern query using only
// the level-2 matrices — the Step-2 signal of the retrieval process,
// exposed as a browsing primitive ("which matches likely contain this
// pattern?"). The score multiplies Π2 with each queried concept's
// normalized presence in B2.
func (e *Engine) RankVideos(q Query) ([]VideoRank, error) {
	if err := q.validateFor(e.m.NumConcepts()); err != nil {
		return nil, err
	}
	// Per-concept column totals of B2 normalize the presence terms.
	totals := make([]float64, e.m.NumConcepts())
	for ci := range totals {
		totals[ci] = e.m.B2.ColSum(ci)
	}
	out := make([]VideoRank, e.m.NumVideos())
	for vi := range out {
		score := e.m.Pi2[vi]
		for _, st := range q.steps() {
			for _, ev := range st.Events {
				ci := ev.Index()
				if totals[ci] == 0 {
					score = 0
					continue
				}
				score *= e.m.B2.At(vi, ci) / totals[ci]
			}
		}
		out[vi] = VideoRank{VideoIdx: vi, VideoID: e.m.VideoIDs[vi], Score: score}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].VideoIdx < out[j].VideoIdx
	})
	return out, nil
}

// SimilarVideos ranks the other videos by similarity to video vi: the
// cosine similarity of their B2 event profiles blended with the learned
// A2 affinity (weighted alpha and 1-alpha respectively). This is the
// Section-4.2.2 "cluster the videos describing similar events" signal as
// a browsing operation.
func (e *Engine) SimilarVideos(vi int, alpha float64, topK int) ([]VideoRank, error) {
	if vi < 0 || vi >= e.m.NumVideos() {
		return nil, fmt.Errorf("retrieval: video index %d out of range (%d videos)", vi, e.m.NumVideos())
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("retrieval: alpha %v outside [0,1]", alpha)
	}
	if topK <= 0 {
		topK = DefaultTopK
	}
	base := e.m.B2.Row(vi)
	out := make([]VideoRank, 0, e.m.NumVideos()-1)
	for vj := 0; vj < e.m.NumVideos(); vj++ {
		if vj == vi {
			continue
		}
		score := alpha*cosine(base, e.m.B2.Row(vj)) + (1-alpha)*e.m.A2.At(vi, vj)
		out = append(out, VideoRank{VideoIdx: vj, VideoID: e.m.VideoIDs[vj], Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].VideoIdx < out[j].VideoIdx
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

package retrieval

import (
	"context"
	"slices"
	"sort"
	"sync/atomic"

	"github.com/videodb/hmmm/internal/videomodel"
)

// cell is one node of the Figure-3 lattice: the best-known path reaching a
// given state at a given query stage. Cells live in a per-search arena and
// reference their predecessor by arena index, so a whole retrieval
// allocates no per-edge nodes; backpointers materialize the path.
type cell struct {
	state int32 // global state index
	vi    int32 // video index of the state
	prev  int32 // arena index of the predecessor cell, -1 at pattern start
	w     float64
	score float64
}

// arena is the reusable per-search scratch: the cell slab, the two stage
// ref buffers, the candidate buffer, the visited-video set, and the dense
// Viterbi relaxation slots. Arenas are pooled on the engine's shared state
// and grow monotonically to the working-set size, after which a Retrieve
// performs no lattice allocation at all.
type arena struct {
	cells      []cell
	bufA, bufB []int32 // current / next stage cell refs
	entry      []int32 // cross-video entry refs (copied, so stage buffers stay free)
	cand       []int   // stepCandidates output buffer
	visited    []bool  // per-video visited flags for cross-video hops
	touched    []int32 // videos to clear from visited on beginVideo
	// Dense relaxation: local state li's next-stage slot is relaxSlot[li],
	// valid only when relaxEpoch[li] == epoch. Bumping epoch resets every
	// slot in O(1).
	relaxEpoch []int64
	relaxSlot  []int32
	epoch      int64
}

// ensure sizes the arena for a model with nVideos videos and at most
// maxLocal states per video.
func (ar *arena) ensure(nVideos, maxLocal int) {
	if len(ar.visited) < nVideos {
		ar.visited = make([]bool, nVideos)
		ar.touched = ar.touched[:0]
	}
	if len(ar.relaxEpoch) < maxLocal {
		ar.relaxEpoch = make([]int64, maxLocal)
		ar.relaxSlot = make([]int32, maxLocal)
	}
}

// beginVideo resets the arena for the next entry video's search.
func (ar *arena) beginVideo() {
	ar.cells = ar.cells[:0]
	for _, v := range ar.touched {
		ar.visited[v] = false
	}
	ar.touched = ar.touched[:0]
}

// visit marks a video as entered by the current search.
func (ar *arena) visit(vi int) {
	ar.visited[vi] = true
	ar.touched = append(ar.touched, int32(vi))
}

// push appends a cell and returns its arena ref. Refs stay valid across
// slab growth (they are indices, not pointers).
func (ar *arena) push(c cell) int32 {
	ar.cells = append(ar.cells, c)
	return int32(len(ar.cells) - 1)
}

// getArena takes an arena sized for the engine's model from the shared
// bounded free list, allocating a fresh one when the list is empty (more
// overlapping searches than the pool cap). Both paths are counted so the
// pool's hit behavior under load is observable.
func (e *Engine) getArena() *arena {
	var ar *arena
	select {
	case ar = <-e.shared.arenas:
		e.opts.Metrics.arenaGet(true)
	default:
		ar = new(arena)
		e.opts.Metrics.arenaGet(false)
	}
	ar.ensure(e.shared.nVideos, e.shared.maxLocal)
	return ar
}

// putArena returns an arena to the free list; when the list is already
// full the arena is dropped for the GC, keeping the idle-scratch
// footprint capped at the pool size regardless of burst concurrency.
func (e *Engine) putArena(ar *arena) {
	select {
	case e.shared.arenas <- ar:
		e.opts.Metrics.arenaPut(false)
	default:
		e.opts.Metrics.arenaPut(true)
	}
}

// ctxPollEdges bounds how many lattice edge relaxations may run between
// request-context polls: the worst-case extra work after a deadline
// expires or a client disconnects. Polling costs one predictable-branch
// counter test per edge plus a ctx.Err() call every interval, which is
// noise next to the ~100ns edge relaxation itself.
const ctxPollEdges = 512

// searchCtx carries one retrieval's per-search state: the normalized
// steps, scope, cost counters, the arena, the top-K admission filter
// (prunes materialization of matches that cannot reach the final
// ranking), the parallel pipeline's cancellation flag, and the request
// context honored at bounded intervals.
type searchCtx struct {
	steps  []Step
	scope  *Scope
	cost   *Cost
	ar     *arena
	admit  func(score float64) bool
	cancel *atomic.Bool
	// ctx, when non-nil, is the per-request context; expired() polls it.
	ctx   context.Context
	polls int
}

// expired reports whether the request context has been cancelled (query
// deadline hit or client gone). Called at video and stage boundaries.
func (sc *searchCtx) expired() bool {
	return sc.ctx != nil && sc.ctx.Err() != nil
}

// stopped reports whether the search should abandon further lattice work:
// the parallel pipeline's speculative-work cancellation, or the request
// context having expired.
func (sc *searchCtx) stopped() bool {
	if sc.cancel != nil && sc.cancel.Load() {
		return true
	}
	return sc.expired()
}

// tick is the per-edge-relaxation check: a cheap counter that polls the
// full stop conditions every ctxPollEdges calls, bounding both the poll
// overhead and the post-cancellation overrun.
func (sc *searchCtx) tick() bool {
	sc.polls++
	if sc.polls%ctxPollEdges != 0 {
		return false
	}
	return sc.stopped()
}

// searchVideo runs the Figure-3 lattice over one entry video: every stage
// keeps every reachable candidate state with its best incoming path
// (Viterbi-style max over transitions), which is what lets the traversal
// "always try the right path" without dying on a locally attractive but
// non-continuable start. It returns up to Beam complete candidate
// sequences plus the raw count of completed sequences before admission
// filtering (the StopAfterMatches currency).
func (e *Engine) searchVideo(vi int, ctx *searchCtx) ([]Match, int) {
	ar := ctx.ar
	ar.visit(vi)
	final := e.lattice(vi, 0, nil, ctx)
	final = ar.topCells(final, e.opts.Beam)
	raw := len(final)
	var matches []Match
	for _, ci := range final {
		c := ar.cells[ci]
		e.emit(TraceEvent{Kind: TraceComplete, Video: vi, State: int(c.state), Value: c.score})
		if ctx.admit == nil || ctx.admit(c.score) {
			matches = append(matches, e.materialize(ci, ar))
		}
	}
	return matches, raw
}

// lattice expands video vi over query stages j0..C-1. entry, when non-nil,
// holds stage j0-1 cell refs in a previous video (cross-video
// continuation); otherwise stage j0 starts fresh with the Eq. 12 weight.
// It returns the final-stage cell refs, possibly from deeper videos
// reached by hops. The refs alias the arena's stage buffers and stay
// valid until the next beginVideo.
func (e *Engine) lattice(vi, j0 int, entry []int32, ctx *searchCtx) []int32 {
	ar := ctx.ar
	cost := ctx.cost
	beam := e.opts.Beam
	cur, next := ar.bufA, ar.bufB
	// Every return stores the (possibly re-grown) buffers back for reuse.
	save := func() { ar.bufA, ar.bufB = cur, next }

	for {
		if ctx.stopped() {
			save()
			return nil
		}

		// Stage j0: enter the video.
		st := ctx.steps[j0]
		cur = cur[:0]
		ar.cand = e.stepCandidates(ar.cand[:0], vi, -1, st, ctx.scope)
		for _, s := range ar.cand {
			if ctx.tick() {
				save()
				return nil
			}
			sim := e.simCounted(s, st, cost)
			if entry == nil {
				// Eq. 12: w1 = Π1(s1) · sim(s1, e1).
				w := e.m.Pi1[s] * sim
				cur = append(cur, ar.push(cell{state: int32(s), vi: int32(vi), prev: -1, w: w, score: w}))
				continue
			}
			// Cross-video entry: the transition factor is the level-2
			// affinity A2(prev video, this video).
			best := int32(-1)
			var bestW, bestScore float64
			for _, eci := range entry {
				cost.EdgeEvals++
				ec := &ar.cells[eci]
				w := ec.w * e.m.A2.At(int(ec.vi), vi) * sim
				if best == -1 || w > bestW {
					best, bestW, bestScore = eci, w, ec.score
				}
			}
			if best != -1 {
				cur = append(cur, ar.push(cell{state: int32(s), vi: int32(vi), prev: best, w: bestW, score: bestScore + bestW}))
			}
		}
		if len(cur) == 0 {
			e.emit(TraceEvent{Kind: TraceDeadEnd, Video: vi, Stage: j0})
			save()
			return nil
		}
		cur = ar.trimByWeight(cur, beam)
		e.emit(TraceEvent{Kind: TraceStage, Video: vi, Stage: j0, N: len(cur)})

		// Stages j0+1..C-1 within this video (Eq. 13), hopping by A2 when
		// the video runs out of candidates (Figure 3's "end of one video").
		hopped := false
		for j := j0 + 1; j < len(ctx.steps); j++ {
			if ctx.stopped() {
				save()
				return nil
			}
			st := ctx.steps[j]
			next = next[:0]
			ar.epoch++
			for _, ci := range cur {
				c := ar.cells[ci] // copy: pushes below may grow the slab
				ar.cand = e.stepCandidates(ar.cand[:0], vi, int(c.state), st, ctx.scope)
				// One bounds-checked row fetch per cell; per-edge A1
				// lookups index the row directly.
				aRow := e.m.LocalA[vi].Row(e.m.States[c.state].LocalIdx)
				for _, s := range ar.cand {
					if ctx.tick() {
						save()
						return nil
					}
					cost.EdgeEvals++
					li := e.m.States[s].LocalIdx
					w := c.w * aRow[li] * e.simCounted(s, st, cost)
					if ar.relaxEpoch[li] == ar.epoch {
						// Viterbi relaxation: keep the best path per state.
						old := &ar.cells[next[ar.relaxSlot[li]]]
						if w > old.w {
							*old = cell{state: int32(s), vi: int32(vi), prev: ci, w: w, score: c.score + w}
						}
						continue
					}
					ar.relaxEpoch[li] = ar.epoch
					ar.relaxSlot[li] = int32(len(next))
					next = append(next, ar.push(cell{state: int32(s), vi: int32(vi), prev: ci, w: w, score: c.score + w}))
				}
			}
			if len(next) == 0 {
				if !e.opts.CrossVideo || st.MaxGapMS > 0 || (ctx.scope != nil && ctx.scope.Video != 0) {
					e.emit(TraceEvent{Kind: TraceDeadEnd, Video: vi, Stage: j})
					save()
					return nil
				}
				nv := e.nextVideo(vi, ar.visited, st, cost)
				if nv < 0 {
					e.emit(TraceEvent{Kind: TraceDeadEnd, Video: vi, Stage: j})
					save()
					return nil
				}
				ar.visit(nv)
				e.emit(TraceEvent{Kind: TraceHop, Video: nv, Stage: j})
				// Continue in the next video: the surviving cells become
				// the entry frontier. Copy the refs out of the stage
				// buffer so the next video's stages can reuse it.
				cur = ar.topCells(cur, beam)
				ar.entry = append(ar.entry[:0], cur...)
				entry = ar.entry
				vi, j0 = nv, j
				hopped = true
				break
			}
			cur, next = ar.trimByWeight(next, beam), cur
			e.emit(TraceEvent{Kind: TraceStage, Video: vi, Stage: j, N: len(cur)})
		}
		if hopped {
			continue
		}
		save()
		return cur
	}
}

// trimByWeight keeps the width best cells by current edge weight w — the
// per-stage beam of the traversal. Beam 1 reproduces the paper's greedy
// single-path walk. The comparator is a total order (stage states are
// unique), so the result is deterministic: the sorted prefix under
// (w descending, state ascending). For the small widths beams use, a
// bounded insertion selection builds that prefix in O(frontier · width)
// cheap field compares — this trim was the measured hot spot of the
// per-video lattice at archive scale — while larger widths keep the
// full sort.
func (ar *arena) trimByWeight(refs []int32, width int) []int32 {
	if len(refs) <= width {
		return refs
	}
	cells := ar.cells
	if width > 16 {
		slices.SortFunc(refs, func(a, b int32) int {
			ca, cb := &cells[a], &cells[b]
			if ca.w != cb.w {
				if ca.w > cb.w {
					return -1
				}
				return 1
			}
			return int(ca.state - cb.state)
		})
		return refs[:width]
	}
	// above reports whether cell a ranks strictly above cell b.
	above := func(a, b int32) bool {
		ca, cb := &cells[a], &cells[b]
		if ca.w != cb.w {
			return ca.w > cb.w
		}
		return ca.state < cb.state
	}
	var kept [16]int32
	n := 0
	for _, r := range refs {
		if n == width {
			if !above(r, kept[n-1]) {
				continue
			}
			n--
		}
		i := n
		for i > 0 && above(r, kept[i-1]) {
			kept[i] = kept[i-1]
			i--
		}
		kept[i] = r
		n++
	}
	copy(refs, kept[:n])
	return refs[:n]
}

// topCells returns the width best cells by running score.
func (ar *arena) topCells(refs []int32, width int) []int32 {
	cells := ar.cells
	slices.SortFunc(refs, func(a, b int32) int {
		ca, cb := &cells[a], &cells[b]
		if ca.score != cb.score {
			if ca.score > cb.score {
				return -1
			}
			return 1
		}
		return int(ca.state - cb.state)
	})
	if len(refs) > width {
		refs = refs[:width]
	}
	return refs
}

// materialize builds the Match for the path ending at arena ref ci. The
// backpointer chain is walked twice — once to size the slices exactly,
// once to fill them in temporal order.
func (e *Engine) materialize(ci int32, ar *arena) Match {
	n := 0
	for x := ci; x != -1; x = ar.cells[x].prev {
		n++
	}
	m := Match{
		States:  make([]int, n),
		Shots:   make([]videomodel.ShotID, n),
		Videos:  make([]videomodel.VideoID, n),
		Weights: make([]float64, n),
		Score:   ar.cells[ci].score,
	}
	for x, i := ci, n-1; x != -1; x, i = ar.cells[x].prev, i-1 {
		c := &ar.cells[x]
		m.States[i] = int(c.state)
		m.Shots[i] = e.m.States[c.state].Shot
		m.Videos[i] = e.m.VideoIDs[c.vi]
		m.Weights[i] = c.w
	}
	return m
}

// stepCandidates appends to buf the global state indices of video vi that
// can serve the step after global state after (-1 for "any"). States
// annotated with every step event are preferred and found through the
// inverted event index; without AnnotatedOnly, all remaining states
// compete when no annotated one exists. buf is the arena's reused
// candidate buffer — callers pass it re-sliced to length zero.
func (e *Engine) stepCandidates(buf []int, vi, after int, step Step, scope *Scope) []int {
	lo, hi := e.m.VideoStates(vi)
	start := lo
	prevMS := -1
	if after >= 0 {
		start = after + 1
		prevMS = e.m.States[after].StartMS
	}

	// Annotated candidates via the index: walk the (shortest) posting
	// list of the step's events, filtering by position, conjunction, and
	// gap constraints.
	if len(step.Events) > 0 {
		posting := e.shared.index[vi][step.Events[0].Index()]
		for _, ev := range step.Events[1:] {
			if alt := e.shared.index[vi][ev.Index()]; len(alt) < len(posting) {
				posting = alt
			}
		}
		// Binary search the first posting >= start.
		i := sort.SearchInts(posting, start)
		for ; i < len(posting); i++ {
			s := posting[i]
			if !scope.contains(e.m.States[s].StartMS) {
				continue
			}
			if prevMS >= 0 && !step.gapOK(prevMS, e.m.States[s].StartMS) {
				continue
			}
			if (len(step.Events) > 1 || len(step.Not) > 0) && !stateHasStep(&e.m.States[s], step) {
				continue
			}
			buf = append(buf, s)
		}
	}
	if len(buf) > 0 || e.opts.AnnotatedOnly {
		return buf
	}
	// Similarity fallback: every remaining state that is NOT a full
	// annotation match (those were exhausted above) competes by features.
	// Negated events still exclude here — "!" means the shot must not
	// carry the annotation, in the fallback set as much as the annotated
	// one — so the two sets stay disjoint and together cover exactly the
	// non-excluded states.
	for s := start; s < hi; s++ {
		if !scope.contains(e.m.States[s].StartMS) {
			continue
		}
		if prevMS >= 0 && !step.gapOK(prevMS, e.m.States[s].StartMS) {
			continue
		}
		if stateExcluded(&e.m.States[s], step) {
			continue
		}
		if !stateHasStep(&e.m.States[s], step) {
			buf = append(buf, s)
		}
	}
	return buf
}

// Cross-domain differential tests: the negation grammar and every
// domain vocabulary run through the same engine-vs-oracle gates as the
// positive soccer-only suite in differential_test.go. Both the lattice
// and the brute-force oracle share one step predicate, so equality here
// pins the negation compile rule end to end.
package retrieval_test

import (
	"fmt"
	"testing"

	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/retrieval/retrievaltest"
)

func TestNegationSingleStepMatchesOracleExactly(t *testing.T) {
	for _, d := range retrievaltest.Domains() {
		for seed := uint64(1); seed <= 4; seed++ {
			m := retrievaltest.RandomModel(t, retrievaltest.Config{
				Seed: seed, Videos: int(seed) + 2, MaxShots: 10,
				Events: d.NumEvents(), Domain: d,
			})
			topK := 10
			eng, err := retrieval.NewEngine(m, retrieval.Options{
				AnnotatedOnly: true, TopK: topK, Beam: topK,
			})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range retrievaltest.NegationQueries(m) {
				if !retrievaltest.SingleStep(q) {
					continue
				}
				want := retrievaltest.Oracle(t, m, q, topK)
				got, err := eng.Retrieve(q)
				if err != nil {
					t.Fatal(err)
				}
				retrievaltest.RequireSameMatches(t,
					fmt.Sprintf("domain=%s seed=%d q=%d", d.Name, seed, qi),
					want.Matches, got.Matches)
			}
		}
	}
}

func TestNegationMultiStepOracleConsistent(t *testing.T) {
	for _, d := range retrievaltest.Domains() {
		for seed := uint64(1); seed <= 4; seed++ {
			m := retrievaltest.RandomModel(t, retrievaltest.Config{
				Seed: seed, Videos: int(seed) + 2, MaxShots: 10,
				Events: d.NumEvents(), Domain: d, LearnP12: seed%2 == 0,
			})
			eng, err := retrieval.NewEngine(m, retrieval.Options{AnnotatedOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range retrievaltest.NegationQueries(m) {
				if retrievaltest.SingleStep(q) {
					continue
				}
				full := retrievaltest.Oracle(t, m, q, retrievaltest.OracleLimit)
				got, err := eng.Retrieve(q)
				if err != nil {
					t.Fatal(err)
				}
				retrievaltest.RequireOracleConsistent(t,
					fmt.Sprintf("domain=%s seed=%d q=%d", d.Name, seed, qi),
					full, got.Matches)
			}
		}
	}
}

// TestDomainPositiveSuiteUnchanged re-runs the positive single-step
// bit-identity gate over every non-soccer domain: the vocabulary swap
// must not perturb the engine-vs-oracle contract that differential_test
// pins for soccer.
func TestDomainPositiveSuiteUnchanged(t *testing.T) {
	for _, d := range retrievaltest.Domains() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel() // exercises the suite under -race in make verify
			for seed := uint64(1); seed <= 3; seed++ {
				m := retrievaltest.RandomModel(t, retrievaltest.Config{
					Seed: seed, Videos: int(seed) + 2, MaxShots: 10,
					Events: d.NumEvents(), Domain: d,
				})
				topK := 10
				eng, err := retrieval.NewEngine(m, retrieval.Options{
					AnnotatedOnly: true, TopK: topK, Beam: topK,
				})
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range retrievaltest.Queries(m) {
					if !retrievaltest.SingleStep(q) {
						continue
					}
					want := retrievaltest.Oracle(t, m, q, topK)
					got, err := eng.Retrieve(q)
					if err != nil {
						t.Fatal(err)
					}
					retrievaltest.RequireSameMatches(t,
						fmt.Sprintf("domain=%s seed=%d q=%d", d.Name, seed, qi),
						want.Matches, got.Matches)
				}
			}
		})
	}
}

// TestDomainCoarseCoveringBitIdentical re-runs the coarse-gate covering
// limit per domain: with CoarseCandidates spanning the whole archive
// the two-stage search must equal the exact engine bit for bit.
func TestDomainCoarseCoveringBitIdentical(t *testing.T) {
	for _, d := range retrievaltest.Domains() {
		m := retrievaltest.RandomModel(t, retrievaltest.Config{
			Seed: 9, Videos: 8, MaxShots: 10, Events: d.NumEvents(),
			Domain: d, LearnP12: true,
		})
		exact, err := retrieval.NewEngine(m, retrieval.Options{AnnotatedOnly: true, TopK: 10, Beam: 10})
		if err != nil {
			t.Fatal(err)
		}
		coarse, err := retrieval.NewEngine(m, retrieval.Options{
			AnnotatedOnly: true, TopK: 10, Beam: 10, CoarseCandidates: m.NumVideos(),
		})
		if err != nil {
			t.Fatal(err)
		}
		qs := append(retrievaltest.Queries(m), retrievaltest.NegationQueries(m)...)
		for qi, q := range qs {
			want, err := exact.Retrieve(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coarse.Retrieve(q)
			if err != nil {
				t.Fatal(err)
			}
			retrievaltest.RequireSameMatches(t,
				fmt.Sprintf("domain=%s q=%d", d.Name, qi), want.Matches, got.Matches)
		}
	}
}

// Package retrieval implements the paper's Section-5 temporal pattern
// retrieval process over an HMMM: the Figure-2 nine-step algorithm, the
// Figure-3 lattice traversal (including cross-video continuation via A2),
// the Eq. 12-13 edge weights, the Eq. 14 similarity function, and the
// Eq. 15 pattern score, plus an exhaustive baseline used by the
// evaluation to quantify the paper's "lower computational costs" claim.
//
// # Query execution path
//
// The engine is built once per model and reused across queries. Two
// derived caches make the hot path cheap: an inverted event index
// (video × concept → annotated state postings) and a dense similarity
// table holding every Eq. 14 sim(s, e) value, both computed at NewEngine
// time. During retrieval the lattice runs on a pooled arena — cells are
// indices into a reusable slab, Viterbi relaxation is a dense per-state
// slot array, and candidate/stage scratch is recycled — so a Retrieve
// performs no per-edge heap allocation. See DESIGN.md §"Query execution
// path" for cache lifetimes and invalidation rules.
package retrieval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strconv"
	"time"

	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/index"
	"github.com/videodb/hmmm/internal/obs"
	"github.com/videodb/hmmm/internal/par"
	"github.com/videodb/hmmm/internal/videomodel"
)

// Step is one position of a temporal pattern: the conjunction of event
// concepts a single shot must exhibit, plus optional temporal-gap
// constraints against the previous step's shot. The paper's Section-3
// example query starts with a shot that is both a free kick and a goal —
// a two-event step; gap constraints extend the temporal relations of the
// authors' companion query model (ref. [8]).
type Step struct {
	Events []videomodel.Event
	// Not lists negated events (MATN "!event" atoms): a shot carrying
	// any of them cannot satisfy the step. Negation only filters the
	// candidate set — scoring (Eq. 14 similarity, Eq. 15 product) is
	// computed from the positive events alone — so a step must also
	// carry at least one positive event.
	Not []videomodel.Event
	// MinGapMS / MaxGapMS bound the start-time distance (milliseconds)
	// from the previous step's shot, within the same video. Zero means
	// unconstrained. A step with MaxGapMS > 0 cannot be satisfied by a
	// cross-video hop (different videos have unrelated timelines).
	MinGapMS int
	MaxGapMS int
}

// gapOK reports whether a transition from a shot starting at prevMS to one
// starting at curMS satisfies the step's gap constraints.
func (st Step) gapOK(prevMS, curMS int) bool {
	gap := curMS - prevMS
	if st.MinGapMS > 0 && gap < st.MinGapMS {
		return false
	}
	if st.MaxGapMS > 0 && gap > st.MaxGapMS {
		return false
	}
	return true
}

// Scope restricts a query to part of the archive: a single video and/or
// a start-time window within each searched video.
type Scope struct {
	// Video, when non-zero, restricts the search to that video (cross-
	// video hops are disabled).
	Video videomodel.VideoID
	// FromMS / ToMS bound the shot start times considered; ToMS 0 means
	// unbounded.
	FromMS, ToMS int
}

// contains reports whether a shot starting at startMS falls in the scope
// window.
func (sc *Scope) contains(startMS int) bool {
	if sc == nil {
		return true
	}
	if startMS < sc.FromMS {
		return false
	}
	if sc.ToMS > 0 && startMS >= sc.ToMS {
		return false
	}
	return true
}

// Query is a temporal event pattern R = {e1, ..., eC} sorted by temporal
// relationship (Section 5). Events is the common single-event-per-step
// form; Steps, when non-empty, takes precedence and allows conjunction
// steps. Scope, when non-nil, restricts where the pattern may match.
type Query struct {
	Events []videomodel.Event
	Steps  []Step
	Scope  *Scope
}

// NewQuery builds a single-event-per-step query.
func NewQuery(events ...videomodel.Event) Query {
	return Query{Events: events}
}

// steps returns the normalized step sequence.
func (q Query) steps() []Step {
	if len(q.Steps) > 0 {
		return q.Steps
	}
	out := make([]Step, len(q.Events))
	for i, e := range q.Events {
		out[i] = Step{Events: []videomodel.Event{e}}
	}
	return out
}

// Len returns the number of steps C.
func (q Query) Len() int {
	if len(q.Steps) > 0 {
		return len(q.Steps)
	}
	return len(q.Events)
}

// Validate checks that the query is non-empty and every event is a real
// concept.
func (q Query) Validate() error {
	steps := q.steps()
	if len(steps) == 0 {
		return errors.New("retrieval: empty query pattern")
	}
	for i, st := range steps {
		if len(st.Events) == 0 {
			return fmt.Errorf("retrieval: query step %d has no events", i)
		}
		for _, e := range st.Events {
			if !e.Valid() {
				return fmt.Errorf("retrieval: query step %d has invalid event %v", i, e)
			}
		}
		for _, e := range st.Not {
			if !e.Valid() {
				return fmt.Errorf("retrieval: query step %d has invalid negated event %v", i, e)
			}
			for _, p := range st.Events {
				if p == e {
					return fmt.Errorf("retrieval: query step %d both requires and negates event %v", i, e)
				}
			}
		}
		if st.MinGapMS < 0 || st.MaxGapMS < 0 {
			return fmt.Errorf("retrieval: query step %d has negative gap constraint", i)
		}
		if st.MaxGapMS > 0 && st.MinGapMS > st.MaxGapMS {
			return fmt.Errorf("retrieval: query step %d has min gap %dms > max gap %dms", i, st.MinGapMS, st.MaxGapMS)
		}
		if i == 0 && (st.MinGapMS > 0 || st.MaxGapMS > 0) {
			return fmt.Errorf("retrieval: first query step cannot carry a gap constraint")
		}
	}
	if sc := q.Scope; sc != nil {
		if sc.FromMS < 0 || sc.ToMS < 0 {
			return errors.New("retrieval: negative scope bound")
		}
		if sc.ToMS > 0 && sc.FromMS >= sc.ToMS {
			return fmt.Errorf("retrieval: empty scope window [%d, %d)", sc.FromMS, sc.ToMS)
		}
	}
	return nil
}

// validateFor extends Validate with the model-relative bound: every
// positive or negated event must address one of the model's c concepts.
// Valid() alone only checks the MaxEvents envelope — a basketball event
// is a valid Event but out of vocabulary for an 8-concept soccer model,
// and letting it through would index past B2's columns.
func (q Query) validateFor(c int) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for i, st := range q.steps() {
		for _, e := range st.Events {
			if e.Index() >= c {
				return fmt.Errorf("retrieval: query step %d event %v outside the model's %d-concept vocabulary", i, e, c)
			}
		}
		for _, e := range st.Not {
			if e.Index() >= c {
				return fmt.Errorf("retrieval: query step %d negated event %v outside the model's %d-concept vocabulary", i, e, c)
			}
		}
	}
	return nil
}

// stateExcluded reports whether a model state carries any of the step's
// negated events.
func stateExcluded(st *hmmm.State, step Step) bool {
	for _, e := range step.Not {
		if st.HasEvent(e) {
			return true
		}
	}
	return false
}

// stateHasStep reports whether a model state is annotated with every
// positive event of the step and none of the negated ones. This single
// predicate is the negation compile rule's whole surface: the lattice,
// the brute-force oracle, and GroundTruthCount all gate on it, which is
// what keeps them exactly equal under negation.
func stateHasStep(st *hmmm.State, step Step) bool {
	if stateExcluded(st, step) {
		return false
	}
	for _, e := range step.Events {
		if !st.HasEvent(e) {
			return false
		}
	}
	return true
}

// Match is one candidate video shot sequence Q_k with its score SS(R, Q_k).
type Match struct {
	States  []int                // global state indices, one per query event
	Shots   []videomodel.ShotID  // the corresponding shots
	Videos  []videomodel.VideoID // video of each step (patterns may span videos)
	Weights []float64            // w_j edge weights (Eqs. 12-13)
	Score   float64              // SS (Eq. 15)
}

// Cost counts the work a retrieval performed; the X1 experiment compares
// these between the HMMM traversal and the exhaustive baseline.
type Cost struct {
	SimEvals   int // Eq. 14 similarity evaluations (table lookups count too)
	EdgeEvals  int // state-transition edges considered
	VideosSeen int // level-2 states expanded
	// Truncated reports that the request context expired (deadline or
	// client disconnect) before the traversal finished: the matches are a
	// valid ranking of what was searched, not of the whole archive.
	Truncated bool
	// DegradedShards counts shards whose ranking is missing from this
	// result because they stayed unreachable past the retry budget
	// (network-distributed serving only; always zero in-process).
	// DegradedShards > 0 implies Truncated.
	DegradedShards int
}

// Add accumulates another cost counter into c (scatter-gather layers
// sum per-member work into one aggregate).
func (c *Cost) Add(o Cost) { c.add(o) }

// add accumulates another cost counter into c.
func (c *Cost) add(o Cost) {
	c.SimEvals += o.SimEvals
	c.EdgeEvals += o.EdgeEvals
	c.VideosSeen += o.VideosSeen
	c.Truncated = c.Truncated || o.Truncated
	c.DegradedShards += o.DegradedShards
}

// Result is a ranked retrieval outcome.
type Result struct {
	Matches []Match // sorted by Score descending
	Cost    Cost
}

// Options tunes the engine.
type Options struct {
	// TopK bounds the number of returned matches; 0 means DefaultTopK.
	TopK int
	// Beam is the number of alternative lattice cells kept per stage and
	// the number of complete paths returned per video. Beam 1 is the
	// paper's literal greedy "always traverse the most optimal path";
	// larger beams trade a little cost for robustness against locally
	// attractive but non-continuable states. 0 means DefaultBeam.
	Beam int
	// CrossVideo allows a pattern to continue in another video (selected
	// by A2 affinity and B2 feature check) when the current video has no
	// further matching shot — the Figure-3 "end of one video" rule.
	CrossVideo bool
	// SimEpsilon floors the Eq. 14 denominator B1'(e, f): features whose
	// per-event mean is below it are skipped ("non-zero features").
	SimEpsilon float64
	// AnnotatedOnly restricts step candidates to states annotated with
	// the sought event. When false, unannotated states compete purely by
	// feature similarity ("or similar to event e_j", Step 3).
	AnnotatedOnly bool
	// Parallel fans the per-video lattice searches out over up to this
	// many worker goroutines (the model is read-only during retrieval).
	// Values <= 1 search serially. Workers pull videos in the Π2/A2
	// affinity order and results are committed in that order, so the
	// returned matches and cost counters are identical to a serial run.
	// Composes with StopAfterMatches: once the committed in-order prefix
	// has accumulated 3×TopK matches, outstanding workers are cancelled
	// and their speculative results discarded, returning exactly the
	// serial early-stop result set.
	//
	// Parallel is a ceiling, not a mandate: per query, the engine
	// estimates the lattice work from the candidate posting lists and
	// uses only as many workers as have at least MinParallelWork
	// estimated edge evaluations each — falling back to the serial loop
	// when the query is too small for fan-out to pay for goroutine and
	// commit overhead. The choice depends only on the model and query
	// (never on timing), and both paths are bit-identical, so results
	// are unaffected.
	Parallel int
	// MinParallelWork is the minimum estimated per-worker work (in edge
	// evaluations) required before Retrieve fans out; see Parallel. 0
	// means DefaultMinParallelWork; negative disables the estimate and
	// always uses Parallel workers (tests use this to force the pipeline
	// on small fixtures).
	MinParallelWork int
	// BuildWorkers bounds the parallelism of the derived-cache builds
	// (the dense Eq. 14 similarity table and the inverted event index)
	// at NewEngine / WithOptions / Invalidate time. 0 means GOMAXPROCS;
	// 1 forces serial builds. Cache contents are bit-identical for every
	// worker count.
	BuildWorkers int
	// ScratchArenas caps the engine's shared free-list of lattice search
	// arenas. Concurrent queries against the same snapshot draw
	// sized-once scratch from this bounded pool instead of allocating
	// per request; when more than ScratchArenas searches overlap, the
	// excess allocate fresh arenas that are discarded on release, so
	// steady-state memory stays flat at pool-cap × working-set no matter
	// how hard the server is hammered. 0 means DefaultScratchArenas
	// (2×GOMAXPROCS, floor 4). Arenas are pure scratch: the pool size
	// never affects results. Pool traffic is observable through the
	// Metrics arena counters.
	ScratchArenas int
	// Tracer, when non-nil, receives TraceEvent s during retrieval: the
	// EXPLAIN ANALYZE view of the traversal. Must be concurrency-safe
	// when combined with Parallel. With Parallel > 1, events from
	// different videos interleave, and under StopAfterMatches cancelled
	// speculative videos may emit events even though their results are
	// discarded.
	Tracer Tracer
	// StopAfterMatches stops expanding further videos once 3×TopK matches
	// have been collected (a margin that keeps the final top-K ranking
	// close to exhaustive). Videos are visited in Π2/A2 affinity order
	// (most promising first), so this is the paper's "traverse the right
	// path ... with lower computational costs" mode; the returned set can
	// miss high-scoring patterns hiding in low-affinity videos. Works
	// with Parallel: the pipeline commits results in affinity order and
	// cancels outstanding workers once the threshold is reached, so the
	// result set equals the serial early-stop run.
	StopAfterMatches bool
	// CoarseCandidates, when positive, enables the coarse→fine two-stage
	// pipeline: the compressed internal/index prefilter ranks videos by
	// an approximate upper-bound path score (per-concept max Π1·sim entry
	// factors chained through per-video max A1·sim transition tables) and
	// the exact lattice runs only on the survivors, in the usual greedy
	// Π2/A2 order. The value is a per-step budget: a k-step pattern keeps
	// up to k×CoarseCandidates videos, because the upper bound's slack
	// compounds with every transition and longer patterns need
	// proportionally more headroom to keep recall.
	// 0 (the default) is exact-only and bit-identical to today's engine.
	// When the limit covers the whole candidate pool no pruning happens
	// and results stay bit-identical too; with real pruning the ranking
	// is the exact engine's restricted to the surviving videos — scores
	// are never approximated, only the searched set shrinks (recall@10
	// >= 0.95 on the retrievaltest corpora; see the recall harness).
	// Like the similarity table, the coarse index snapshots Π1 and
	// B1/B1'/P12 at build time: after training, pruning uses the stale
	// snapshot until Invalidate, while exact scoring stays live.
	// Queries scoped to a single video bypass the prefilter entirely.
	CoarseCandidates int
	// NoSimCache disables the engine's precomputed sim(s, e) table and
	// recomputes Eq. 14 from the raw B1/B1'/P12 rows on every evaluation.
	// The cached and uncached paths produce bit-identical scores; the
	// escape hatch exists for memory-constrained deployments (the table
	// is NumStates × NumConcepts float64s) and for verification tests.
	NoSimCache bool
	// Metrics, when non-nil, receives per-retrieval observations (query
	// count and latency, sim-cache hits/misses, edges relaxed, videos
	// expanded, truncations, per-stage timings). Recording happens once
	// per Retrieve from the accumulated Cost counters — the lattice hot
	// loop stays atomics-free — so the overhead is a few counter adds
	// and three clock reads per query.
	Metrics *Metrics
	// Trace, when non-nil, collects per-stage spans ("order", "search",
	// "rank") for this retrieval: the timing generalization of Tracer's
	// event stream, and the raw material of the server's slow-query log.
	// Safe to share across the alternation branches of one request; each
	// branch appends its own spans.
	Trace *obs.Trace
}

// Default engine parameters.
const (
	DefaultTopK       = 10
	DefaultBeam       = 4
	DefaultSimEpsilon = 1e-9
	// DefaultMinParallelWork is the estimated per-worker edge-evaluation
	// count below which Retrieve does not fan out; see
	// Options.MinParallelWork. Calibrated against the parallel-retrieval
	// benchmark: fan-out costs a few µs of goroutine + ordered-commit
	// overhead, which a worker amortizes only over a few thousand edges.
	DefaultMinParallelWork = 2048
)

func (o Options) withDefaults() Options {
	if o.TopK <= 0 {
		o.TopK = DefaultTopK
	}
	if o.Beam <= 0 {
		o.Beam = DefaultBeam
	}
	if o.SimEpsilon <= 0 {
		o.SimEpsilon = DefaultSimEpsilon
	}
	return o
}

// Engine retrieves temporal patterns from an HMMM.
type Engine struct {
	m    *hmmm.Model
	opts Options
	// shared holds the read-only derived caches (event index, similarity
	// table, arena pool). Engines derived via WithOptions share it.
	shared *engineShared
}

// engineShared bundles the caches that depend only on the model and the
// cache-affecting options (SimEpsilon, NoSimCache), not on per-query
// tuning. It is immutable after construction; Invalidate swaps in a
// freshly built instance.
type engineShared struct {
	// index[vi][ci] holds the ascending global state indices of video vi
	// annotated with concept ci: the inverted event index behind Step 3's
	// candidate lookups.
	index [][][]int
	// sim is the dense NumStates × NumConcepts Eq. 14 table (row-major by
	// state); nil when Options.NoSimCache is set.
	sim      []float64
	concepts int
	// coarse is the candidate-generation prefilter; nil unless
	// Options.CoarseCandidates > 0.
	coarse *index.Coarse
	// modelVersion is hmmm.Model.Version() at build time; Stale compares
	// against it.
	modelVersion uint64
	// nVideos / maxLocal size the pooled search arenas.
	nVideos  int
	maxLocal int
	// arenas is a bounded free list of search scratch: a buffered channel
	// holding idle arenas. Unlike sync.Pool it is never drained by GC and
	// never grows past its capacity (Options.ScratchArenas), so the
	// steady-state scratch footprint of a saturated server is a fixed,
	// known quantity. Releases beyond capacity drop the arena for the GC
	// to reclaim — a counted event, so a chronically undersized pool is
	// visible in metrics rather than silent re-allocation churn.
	arenas chan *arena
}

// DefaultScratchArenas is the arena free-list capacity used when
// Options.ScratchArenas is zero: two arenas per CPU (floor 4), enough
// for every runnable search plus a recycling margin while staying a
// small multiple of the working set.
func DefaultScratchArenas() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

// NewEngine returns an engine over the model. The model is not copied.
// Retrieval reads A1/A2/Π1/Π2 live, so feedback training the model
// re-tunes subsequent retrievals without any cache work; mutations that
// touch B1, B1', P12, or the state set (RefreshDerived, LearnP12,
// AddVideo) require Invalidate (or a new engine) so the event index and
// similarity table match the model again.
func NewEngine(m *hmmm.Model, opts Options) (*Engine, error) {
	if m == nil {
		return nil, errors.New("retrieval: nil model")
	}
	if err := m.Validate(1e-6); err != nil {
		return nil, fmt.Errorf("retrieval: invalid model: %w", err)
	}
	e := &Engine{m: m, opts: opts.withDefaults()}
	e.shared = buildShared(m, e.opts)
	return e, nil
}

// buildShared computes the derived caches for the model under the given
// (defaulted) options.
func buildShared(m *hmmm.Model, opts Options) *engineShared {
	sh := &engineShared{
		concepts:     m.NumConcepts(),
		modelVersion: m.Version(),
		nVideos:      m.NumVideos(),
	}
	sh.index = make([][][]int, m.NumVideos())
	for vi := range sh.index {
		lo, hi := m.VideoStates(vi)
		if n := hi - lo; n > sh.maxLocal {
			sh.maxLocal = n
		}
	}
	// Each video's posting lists are independent and land in the video's
	// own index slot, so the fill fans out over BuildWorkers with
	// bit-identical contents for any worker count (postings stay in
	// ascending state order because each worker scans its video's state
	// range forward).
	par.For(opts.BuildWorkers, len(sh.index), func(vi int) {
		idx := make([][]int, m.NumConcepts())
		lo, hi := m.VideoStates(vi)
		for s := lo; s < hi; s++ {
			for _, ev := range m.States[s].Events {
				if ev.Valid() {
					ci := ev.Index()
					idx[ci] = append(idx[ci], s)
				}
			}
		}
		sh.index[vi] = idx
	})
	if !opts.NoSimCache {
		sh.sim = buildSimTable(m, opts.SimEpsilon, opts.BuildWorkers)
	}
	if opts.CoarseCandidates > 0 {
		sh.coarse = index.Build(m, opts.SimEpsilon)
	}
	poolCap := opts.ScratchArenas
	if poolCap <= 0 {
		poolCap = DefaultScratchArenas()
	}
	sh.arenas = make(chan *arena, poolCap)
	return sh
}

// WithOptions returns an engine over the same model with different
// per-query options, sharing this engine's derived caches. The caches are
// reused when the cache-affecting options (SimEpsilon, NoSimCache, and
// coarse-prefilter presence) are unchanged; otherwise they are rebuilt.
// The server uses this to apply per-request TopK/Beam/CrossVideo/
// AnnotatedOnly overrides without paying the cache build on every
// request. Changing CoarseCandidates between two positive values reuses
// the coarse index (the limit is applied per query, not baked into it).
func (e *Engine) WithOptions(opts Options) *Engine {
	opts = opts.withDefaults()
	ne := &Engine{m: e.m, opts: opts, shared: e.shared}
	if opts.NoSimCache != e.opts.NoSimCache || opts.SimEpsilon != e.opts.SimEpsilon ||
		(opts.CoarseCandidates > 0) != (e.opts.CoarseCandidates > 0) {
		ne.shared = buildShared(e.m, opts)
	}
	return ne
}

// Invalidate rebuilds the engine's derived caches (event index, similarity
// table, arena sizing) from the model's current contents, re-validating
// the model first. It must be called after mutations that change B1, B1',
// P12, or the state set: RefreshDerived, LearnP12, and AddVideo. Feedback
// retraining (feedback.Trainer.Retrain) only mutates A1, A2, Π1, and Π2 —
// which the engine reads live — so retraining alone does not strictly
// require it; calling it after every retrain is cheap and always safe.
// Invalidate is not safe concurrently with Retrieve; callers serialize
// (the server holds its write lock). Engines previously derived via
// WithOptions keep the old caches — re-derive them afterwards.
func (e *Engine) Invalidate() error {
	if err := e.m.Validate(1e-6); err != nil {
		return fmt.Errorf("retrieval: invalid model: %w", err)
	}
	e.shared = buildShared(e.m, e.opts)
	return nil
}

// Stale reports whether the model has been mutated since the engine's
// caches were built. A stale engine still retrieves safely as long as the
// state set is unchanged, but its similarity table may no longer reflect
// B1/B1'/P12; see Invalidate.
func (e *Engine) Stale() bool { return e.m.Version() != e.shared.modelVersion }

// Model returns the engine's underlying model.
func (e *Engine) Model() *hmmm.Model { return e.m }

// topAccum accumulates candidate matches while pruning ones that can no
// longer reach the final top-limit ranking: once limit matches are held,
// any candidate scoring strictly below the limit-th best score is
// rejected before materialization. Pruning never changes the final
// ranked output — it only avoids building matches that the closing
// sort-and-truncate would discard anyway.
type topAccum struct {
	limit   int
	matches []Match
	// raw counts every completed candidate sequence, including pruned
	// ones: the StopAfterMatches threshold semantics predate pruning and
	// count raw completions.
	raw     int
	thresh  float64
	pruning bool
}

// admit reports whether a candidate with the score can still make the
// final ranking. Ties with the current threshold are admitted (the lex
// tie-break on states may still place them).
func (a *topAccum) admit(score float64) bool { return !a.pruning || score >= a.thresh }

// add appends an admitted match, compacting to the top-limit set once
// enough accumulate.
func (a *topAccum) add(m Match) {
	a.matches = append(a.matches, m)
	if len(a.matches) >= 2*a.limit {
		sortMatches(a.matches)
		a.matches = a.matches[:a.limit]
		a.thresh = a.matches[a.limit-1].Score
		a.pruning = true
	}
}

// finalize ranks and truncates the accumulated matches.
func (a *topAccum) finalize(topK int) []Match {
	sortMatches(a.matches)
	if len(a.matches) > topK {
		a.matches = a.matches[:topK]
	}
	return a.matches
}

// Retrieve runs the Figure-2 process: traverse the video level (Step 2)
// selecting candidate videos, walk the shot lattice per video (Steps 3-5),
// score candidate sequences (Step 6), and rank them (Steps 7-9).
func (e *Engine) Retrieve(q Query) (*Result, error) {
	return e.RetrieveContext(context.Background(), q)
}

// RetrieveContext is Retrieve honoring a request context: the traversal
// polls ctx at video boundaries and every ctxPollEdges lattice edge
// relaxations, so a deadline or client disconnect stops the search within
// a bounded amount of further work. An expired context is not an error —
// the matches ranked so far are returned with Cost.Truncated set, turning
// a pathological query into a fast partial answer instead of unbounded
// work. With a background (never-cancelled) context the result is
// bit-identical to Retrieve.
func (e *Engine) RetrieveContext(ctx context.Context, q Query) (*Result, error) {
	if err := q.validateFor(e.m.NumConcepts()); err != nil {
		return nil, err
	}
	// Stage timing backs both Options.Metrics and Options.Trace; with
	// neither configured no clock is read.
	timed := e.opts.Metrics != nil || e.opts.Trace != nil
	var t0, t1, t2 time.Time
	if timed {
		t0 = time.Now()
	}
	res := &Result{}
	steps := q.steps()
	order := e.videoOrder(steps, q.Scope, &res.Cost)
	if q.Scope != nil && q.Scope.Video != 0 {
		scoped := order[:0:0]
		for _, vi := range order {
			if e.m.VideoIDs[vi] == q.Scope.Video {
				scoped = append(scoped, vi)
			}
		}
		if len(scoped) == 0 {
			// The scoped video may lack the first step's events entirely;
			// search it anyway when it exists (similarity mode may match).
			for vi, vid := range e.m.VideoIDs {
				if vid == q.Scope.Video {
					scoped = append(scoped, vi)
					break
				}
			}
		}
		order = scoped
	}
	if timed {
		t1 = time.Now()
	}
	acc := &topAccum{limit: e.opts.TopK}
	if workers := e.effectiveParallel(order, steps); workers > 1 {
		e.retrieveParallel(ctx, workers, order, q, steps, res, acc)
	} else {
		stopAt := 0
		if e.opts.StopAfterMatches {
			stopAt = 3 * e.opts.TopK
		}
		ar := e.getArena()
		sctx := &searchCtx{steps: steps, scope: q.Scope, cost: &res.Cost, ar: ar, admit: acc.admit, ctx: ctx}
		for oi, vi := range order {
			if sctx.expired() {
				break
			}
			res.Cost.VideosSeen++
			e.emit(TraceEvent{Kind: TraceVideoEnter, Video: vi, N: oi})
			ar.beginVideo()
			matches, raw := e.searchVideo(vi, sctx)
			for _, m := range matches {
				acc.add(m)
			}
			acc.raw += raw
			if stopAt > 0 && acc.raw >= stopAt {
				e.emit(TraceEvent{Kind: TraceEarlyStop, N: acc.raw})
				break
			}
		}
		e.putArena(ar)
	}
	if timed {
		t2 = time.Now()
	}
	res.Matches = acc.finalize(e.opts.TopK)
	if ctx.Err() != nil {
		res.Cost.Truncated = true
	}
	if timed {
		t3 := time.Now()
		if tr := e.opts.Trace; tr != nil {
			tr.Record("order", t0, t1.Sub(t0))
			tr.Record("search", t1, t2.Sub(t1))
			tr.Record("rank", t2, t3.Sub(t2))
		}
		e.opts.Metrics.observe(res.Cost, !e.opts.NoSimCache,
			t3.Sub(t0), t1.Sub(t0), t2.Sub(t1), t3.Sub(t2))
	}
	return res, nil
}

// videoOrder implements Step 2: start from the highest-Π2 video containing
// the first step's events (checking B2), then repeatedly hop to the
// remaining video with the strongest A2 affinity to the previous one.
// Videos lacking the events entirely are appended last (they can still
// host similar shots when AnnotatedOnly is false). With the coarse
// prefilter enabled (Options.CoarseCandidates > 0), the candidate set is
// first pruned to the prefilter's survivors — except for queries scoped
// to a single video, which skip the prefilter (the scope already prunes
// harder than the index could, and bypassing keeps scoped results
// bit-identical to the exact engine's).
func (e *Engine) videoOrder(steps []Step, scope *Scope, cost *Cost) []int {
	if e.opts.CoarseCandidates > 0 && e.shared.coarse != nil &&
		(scope == nil || scope.Video == 0) {
		return e.coarseOrder(steps, cost)
	}
	first := steps[0]
	mv := e.m.NumVideos()
	candidates := make([]int, 0, mv)
	isCandidate := make([]bool, mv)
	for v := 0; v < mv; v++ {
		if e.videoHasStep(v, first) {
			candidates = append(candidates, v)
			isCandidate[v] = true
		}
	}
	order := e.greedyOrder(candidates, cost)
	if !e.opts.AnnotatedOnly {
		for v := 0; v < mv; v++ {
			if !isCandidate[v] {
				order = append(order, v)
			}
		}
	}
	return order
}

// coarseOrder is the two-stage variant of videoOrder: the internal/index
// prefilter reduces the scored pool to at most steps×CoarseCandidates
// videos, and only the survivors receive the exact Π2/A2 greedy walk. Survivors
// passing the first step's B2 check are walked exactly like videoOrder's
// candidates; in similarity-fallback mode (AnnotatedOnly=false) the
// remaining survivors are appended in ascending order, mirroring the
// exact path's trailing append restricted to survivors. When the limit
// covers the whole pool the prefilter is the identity, making this
// ordering — and hence the retrieval — bit-identical to the exact one.
func (e *Engine) coarseOrder(steps []Step, cost *Cost) []int {
	cs := make([][]int, len(steps))
	for i, st := range steps {
		cs[i] = make([]int, len(st.Events))
		for j, ev := range st.Events {
			cs[i][j] = ev.Index()
		}
	}
	// The proxy's upper-bound slack compounds per transition, so the
	// candidate budget scales with pattern length: a k-step query keeps
	// up to k×CoarseCandidates survivors.
	limit := e.opts.CoarseCandidates
	if len(steps) > 1 {
		limit *= len(steps)
	}
	survivors, scored := e.shared.coarse.Candidates(cs, limit, !e.opts.AnnotatedOnly)
	// Coarse scoring work is accounted as edge evaluations: one cheap
	// table-product per scored video, the analogue of the A2 edge scans
	// it replaces.
	cost.EdgeEvals += scored
	candidates := make([]int, 0, len(survivors))
	var tail []int
	for _, v := range survivors {
		if e.videoHasStep(v, steps[0]) {
			candidates = append(candidates, v)
		} else if !e.opts.AnnotatedOnly {
			tail = append(tail, v)
		}
	}
	return append(e.greedyOrder(candidates, cost), tail...)
}

// greedyOrder runs the Step-2 greedy walk over a candidate set: seed
// with the max-Π2 candidate, then repeatedly hop to the remaining
// candidate with the strongest A2 affinity to the previous one. Chosen
// candidates are swap-removed from the working set so the walk scans
// only the still-unvisited suffix; ties break toward the smallest video
// index, matching the ascending first-max scan the removal replaced.
// The candidates slice is consumed (mutated).
func (e *Engine) greedyOrder(candidates []int, cost *Cost) []int {
	order := make([]int, 0, e.m.NumVideos())
	if len(candidates) > 0 {
		// Seed with the max-Π2 candidate (smallest index on ties).
		bi := 0
		for i, v := range candidates[1:] {
			if e.m.Pi2[v] > e.m.Pi2[candidates[bi]] {
				bi = i + 1
			}
		}
		cur := candidates[bi]
		candidates[bi] = candidates[len(candidates)-1]
		candidates = candidates[:len(candidates)-1]
		order = append(order, cur)
		for len(candidates) > 0 {
			row := e.m.A2.Row(cur)
			bi = 0
			best := row[candidates[0]]
			cost.EdgeEvals++
			for i := 1; i < len(candidates); i++ {
				cost.EdgeEvals++
				v := candidates[i]
				if aff := row[v]; aff > best || (aff == best && v < candidates[bi]) {
					bi, best = i, aff
				}
			}
			cur = candidates[bi]
			candidates[bi] = candidates[len(candidates)-1]
			candidates = candidates[:len(candidates)-1]
			order = append(order, cur)
		}
	}
	return order
}

// videoHasStep reports whether video v contains every event of the step
// according to B2 (the Step-2 feature check).
func (e *Engine) videoHasStep(v int, step Step) bool {
	for _, ev := range step.Events {
		if e.m.B2.At(v, ev.Index()) == 0 {
			return false
		}
	}
	return true
}

// transition returns the A1 factor between two states of the same video.
func (e *Engine) transition(vi, from, to int) float64 {
	a := e.m.LocalA[vi]
	return a.At(e.m.States[from].LocalIdx, e.m.States[to].LocalIdx)
}

// nextVideo picks the not-yet-visited video with the highest A2 affinity
// to cur among those containing ev (B2 check). It returns -1 when none
// qualifies.
func (e *Engine) nextVideo(cur int, used []bool, step Step, cost *Cost) int {
	best := -1
	for v := 0; v < e.m.NumVideos(); v++ {
		if used[v] || !e.videoHasStep(v, step) {
			continue
		}
		cost.EdgeEvals++
		if best == -1 || e.m.A2.At(cur, v) > e.m.A2.At(cur, best) {
			best = v
		}
	}
	return best
}

func (e *Engine) simCounted(s int, step Step, cost *Cost) float64 {
	cost.SimEvals++
	return e.SimStep(s, step)
}

// SimStep averages Sim over the step's conjunct events.
func (e *Engine) SimStep(s int, step Step) float64 {
	if len(step.Events) == 0 {
		return 0
	}
	var sum float64
	for _, ev := range step.Events {
		sum += e.Sim(s, ev)
	}
	return sum / float64(len(step.Events))
}

// sortMatches orders matches by score descending with a deterministic
// tie-break on state indices.
func sortMatches(ms []Match) {
	slices.SortFunc(ms, func(x, y Match) int {
		if x.Score != y.Score {
			if x.Score > y.Score {
				return -1
			}
			return 1
		}
		if c := slices.Compare(x.States, y.States); c != 0 {
			return c
		}
		return 0
	})
}

// ExactMatch reports whether every step of the match lands on a state
// annotated with all of the corresponding step's events: the ground-truth
// criterion used by the precision experiments.
func ExactMatch(m *hmmm.Model, match Match, q Query) bool {
	steps := q.steps()
	if len(match.States) != len(steps) {
		return false
	}
	for i, s := range match.States {
		if !stateHasStep(&m.States[s], steps[i]) {
			return false
		}
	}
	return true
}

// MergeRanked deduplicates matches by state sequence (keeping the highest
// score), re-ranks, and truncates to topK. The server uses it to combine
// the results of the several linear patterns an MATN query may expand to.
func MergeRanked(matches []Match, topK int) []Match {
	if topK <= 0 {
		topK = DefaultTopK
	}
	best := make(map[string]Match, len(matches))
	for _, m := range matches {
		k := stateKey(m.States)
		if old, ok := best[k]; !ok || m.Score > old.Score {
			best[k] = m
		}
	}
	out := make([]Match, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sortMatches(out)
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

func stateKey(states []int) string {
	b := make([]byte, 0, len(states)*3)
	for _, s := range states {
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
	}
	return string(b)
}

// Package retrieval implements the paper's Section-5 temporal pattern
// retrieval process over an HMMM: the Figure-2 nine-step algorithm, the
// Figure-3 lattice traversal (including cross-video continuation via A2),
// the Eq. 12-13 edge weights, the Eq. 14 similarity function, and the
// Eq. 15 pattern score, plus an exhaustive baseline used by the
// evaluation to quantify the paper's "lower computational costs" claim.
package retrieval

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/videomodel"
)

// Step is one position of a temporal pattern: the conjunction of event
// concepts a single shot must exhibit, plus optional temporal-gap
// constraints against the previous step's shot. The paper's Section-3
// example query starts with a shot that is both a free kick and a goal —
// a two-event step; gap constraints extend the temporal relations of the
// authors' companion query model (ref. [8]).
type Step struct {
	Events []videomodel.Event
	// MinGapMS / MaxGapMS bound the start-time distance (milliseconds)
	// from the previous step's shot, within the same video. Zero means
	// unconstrained. A step with MaxGapMS > 0 cannot be satisfied by a
	// cross-video hop (different videos have unrelated timelines).
	MinGapMS int
	MaxGapMS int
}

// gapOK reports whether a transition from a shot starting at prevMS to one
// starting at curMS satisfies the step's gap constraints.
func (st Step) gapOK(prevMS, curMS int) bool {
	gap := curMS - prevMS
	if st.MinGapMS > 0 && gap < st.MinGapMS {
		return false
	}
	if st.MaxGapMS > 0 && gap > st.MaxGapMS {
		return false
	}
	return true
}

// Scope restricts a query to part of the archive: a single video and/or
// a start-time window within each searched video.
type Scope struct {
	// Video, when non-zero, restricts the search to that video (cross-
	// video hops are disabled).
	Video videomodel.VideoID
	// FromMS / ToMS bound the shot start times considered; ToMS 0 means
	// unbounded.
	FromMS, ToMS int
}

// contains reports whether a shot starting at startMS falls in the scope
// window.
func (sc *Scope) contains(startMS int) bool {
	if sc == nil {
		return true
	}
	if startMS < sc.FromMS {
		return false
	}
	if sc.ToMS > 0 && startMS >= sc.ToMS {
		return false
	}
	return true
}

// Query is a temporal event pattern R = {e1, ..., eC} sorted by temporal
// relationship (Section 5). Events is the common single-event-per-step
// form; Steps, when non-empty, takes precedence and allows conjunction
// steps. Scope, when non-nil, restricts where the pattern may match.
type Query struct {
	Events []videomodel.Event
	Steps  []Step
	Scope  *Scope
}

// NewQuery builds a single-event-per-step query.
func NewQuery(events ...videomodel.Event) Query {
	return Query{Events: events}
}

// steps returns the normalized step sequence.
func (q Query) steps() []Step {
	if len(q.Steps) > 0 {
		return q.Steps
	}
	out := make([]Step, len(q.Events))
	for i, e := range q.Events {
		out[i] = Step{Events: []videomodel.Event{e}}
	}
	return out
}

// Len returns the number of steps C.
func (q Query) Len() int {
	if len(q.Steps) > 0 {
		return len(q.Steps)
	}
	return len(q.Events)
}

// Validate checks that the query is non-empty and every event is a real
// concept.
func (q Query) Validate() error {
	steps := q.steps()
	if len(steps) == 0 {
		return errors.New("retrieval: empty query pattern")
	}
	for i, st := range steps {
		if len(st.Events) == 0 {
			return fmt.Errorf("retrieval: query step %d has no events", i)
		}
		for _, e := range st.Events {
			if !e.Valid() {
				return fmt.Errorf("retrieval: query step %d has invalid event %v", i, e)
			}
		}
		if st.MinGapMS < 0 || st.MaxGapMS < 0 {
			return fmt.Errorf("retrieval: query step %d has negative gap constraint", i)
		}
		if st.MaxGapMS > 0 && st.MinGapMS > st.MaxGapMS {
			return fmt.Errorf("retrieval: query step %d has min gap %dms > max gap %dms", i, st.MinGapMS, st.MaxGapMS)
		}
		if i == 0 && (st.MinGapMS > 0 || st.MaxGapMS > 0) {
			return fmt.Errorf("retrieval: first query step cannot carry a gap constraint")
		}
	}
	if sc := q.Scope; sc != nil {
		if sc.FromMS < 0 || sc.ToMS < 0 {
			return errors.New("retrieval: negative scope bound")
		}
		if sc.ToMS > 0 && sc.FromMS >= sc.ToMS {
			return fmt.Errorf("retrieval: empty scope window [%d, %d)", sc.FromMS, sc.ToMS)
		}
	}
	return nil
}

// stateHasStep reports whether a model state is annotated with every event
// of the step.
func stateHasStep(st *hmmm.State, step Step) bool {
	for _, e := range step.Events {
		if !st.HasEvent(e) {
			return false
		}
	}
	return true
}

// Match is one candidate video shot sequence Q_k with its score SS(R, Q_k).
type Match struct {
	States  []int                // global state indices, one per query event
	Shots   []videomodel.ShotID  // the corresponding shots
	Videos  []videomodel.VideoID // video of each step (patterns may span videos)
	Weights []float64            // w_j edge weights (Eqs. 12-13)
	Score   float64              // SS (Eq. 15)
}

// Cost counts the work a retrieval performed; the X1 experiment compares
// these between the HMMM traversal and the exhaustive baseline.
type Cost struct {
	SimEvals   int // Eq. 14 similarity evaluations
	EdgeEvals  int // state-transition edges considered
	VideosSeen int // level-2 states expanded
}

// Result is a ranked retrieval outcome.
type Result struct {
	Matches []Match // sorted by Score descending
	Cost    Cost
}

// Options tunes the engine.
type Options struct {
	// TopK bounds the number of returned matches; 0 means DefaultTopK.
	TopK int
	// Beam is the number of alternative lattice cells kept per stage and
	// the number of complete paths returned per video. Beam 1 is the
	// paper's literal greedy "always traverse the most optimal path";
	// larger beams trade a little cost for robustness against locally
	// attractive but non-continuable states. 0 means DefaultBeam.
	Beam int
	// CrossVideo allows a pattern to continue in another video (selected
	// by A2 affinity and B2 feature check) when the current video has no
	// further matching shot — the Figure-3 "end of one video" rule.
	CrossVideo bool
	// SimEpsilon floors the Eq. 14 denominator B1'(e, f): features whose
	// per-event mean is below it are skipped ("non-zero features").
	SimEpsilon float64
	// AnnotatedOnly restricts step candidates to states annotated with
	// the sought event. When false, unannotated states compete purely by
	// feature similarity ("or similar to event e_j", Step 3).
	AnnotatedOnly bool
	// Parallel fans the per-video lattice searches out over this many
	// goroutines (the model is read-only during retrieval). Values <= 1
	// search serially. Parallel retrieval ignores StopAfterMatches and
	// returns exactly the serial result set.
	Parallel int
	// Tracer, when non-nil, receives TraceEvent s during retrieval: the
	// EXPLAIN ANALYZE view of the traversal. Must be concurrency-safe
	// when combined with Parallel.
	Tracer Tracer
	// StopAfterMatches stops expanding further videos once 3×TopK matches
	// have been collected (a margin that keeps the final top-K ranking
	// close to exhaustive). Videos are visited in Π2/A2 affinity order
	// (most promising first), so this is the paper's "traverse the right
	// path ... with lower computational costs" mode; the returned set can
	// miss high-scoring patterns hiding in low-affinity videos.
	StopAfterMatches bool
}

// Default engine parameters.
const (
	DefaultTopK       = 10
	DefaultBeam       = 4
	DefaultSimEpsilon = 1e-9
)

func (o Options) withDefaults() Options {
	if o.TopK <= 0 {
		o.TopK = DefaultTopK
	}
	if o.Beam <= 0 {
		o.Beam = DefaultBeam
	}
	if o.SimEpsilon <= 0 {
		o.SimEpsilon = DefaultSimEpsilon
	}
	return o
}

// Engine retrieves temporal patterns from an HMMM.
type Engine struct {
	m    *hmmm.Model
	opts Options
	// index[vi][ci] holds the ascending global state indices of video vi
	// annotated with concept ci: the inverted event index behind Step 3's
	// candidate lookups.
	index [][][]int
}

// NewEngine returns an engine over the model. The model is not copied;
// training it re-tunes subsequent retrievals, but structural changes
// (AddVideo) require a new engine so the event index matches the states.
func NewEngine(m *hmmm.Model, opts Options) (*Engine, error) {
	if m == nil {
		return nil, errors.New("retrieval: nil model")
	}
	if err := m.Validate(1e-6); err != nil {
		return nil, fmt.Errorf("retrieval: invalid model: %w", err)
	}
	e := &Engine{m: m, opts: opts.withDefaults()}
	e.index = make([][][]int, m.NumVideos())
	for vi := range e.index {
		e.index[vi] = make([][]int, m.NumConcepts())
		lo, hi := m.VideoStates(vi)
		for s := lo; s < hi; s++ {
			for _, ev := range m.States[s].Events {
				if ev.Valid() {
					ci := ev.Index()
					e.index[vi][ci] = append(e.index[vi][ci], s)
				}
			}
		}
	}
	return e, nil
}

// Model returns the engine's underlying model.
func (e *Engine) Model() *hmmm.Model { return e.m }

// Sim computes the Eq. 14 similarity between global state s and event
// concept ev over the non-zero features of the concept:
//
//	sim(s,e) = Σ_y P12(e,fy) · (1 - |B1(s,fy) - B1'(e,fy)|) / B1'(e,fy)
func (e *Engine) Sim(s int, ev videomodel.Event) float64 {
	ci := ev.Index()
	bRow := e.m.B1.Row(s)
	meanRow := e.m.B1Prime.Row(ci)
	pRow := e.m.P12.Row(ci)
	var sim float64
	for y, mean := range meanRow {
		if mean <= e.opts.SimEpsilon {
			continue
		}
		d := bRow[y] - mean
		if d < 0 {
			d = -d
		}
		sim += pRow[y] * (1 - d) / mean
	}
	return sim
}

// path is a partial candidate during traversal.
type path struct {
	states  []int
	videos  []int // video index per step
	weights []float64
	w       float64 // current w_j
	score   float64 // running SS
}

func (p *path) extend(state, video int, w float64) *path {
	np := &path{
		states:  append(append([]int(nil), p.states...), state),
		videos:  append(append([]int(nil), p.videos...), video),
		weights: append(append([]float64(nil), p.weights...), w),
		w:       w,
		score:   p.score + w,
	}
	return np
}

// Retrieve runs the Figure-2 process: traverse the video level (Step 2)
// selecting candidate videos, walk the shot lattice per video (Steps 3-5),
// score candidate sequences (Step 6), and rank them (Steps 7-9).
func (e *Engine) Retrieve(q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	order := e.videoOrder(q.steps()[0], &res.Cost)
	if q.Scope != nil && q.Scope.Video != 0 {
		scoped := order[:0:0]
		for _, vi := range order {
			if e.m.VideoIDs[vi] == q.Scope.Video {
				scoped = append(scoped, vi)
			}
		}
		if len(scoped) == 0 {
			// The scoped video may lack the first step's events entirely;
			// search it anyway when it exists (similarity mode may match).
			for vi, vid := range e.m.VideoIDs {
				if vid == q.Scope.Video {
					scoped = append(scoped, vi)
					break
				}
			}
		}
		order = scoped
	}
	if e.opts.Parallel > 1 && !e.opts.StopAfterMatches {
		e.retrieveParallel(order, q, res)
	} else {
		for oi, vi := range order {
			res.Cost.VideosSeen++
			e.emit(TraceEvent{Kind: TraceVideoEnter, Video: vi, N: oi})
			for _, m := range e.searchVideo(vi, q, &res.Cost) {
				e.emit(TraceEvent{Kind: TraceComplete, Video: vi, State: m.States[len(m.States)-1], Value: m.Score})
				res.Matches = append(res.Matches, m)
			}
			if e.opts.StopAfterMatches && len(res.Matches) >= 3*e.opts.TopK {
				break
			}
		}
	}
	sortMatches(res.Matches)
	if len(res.Matches) > e.opts.TopK {
		res.Matches = res.Matches[:e.opts.TopK]
	}
	return res, nil
}

// retrieveParallel searches the ordered videos concurrently. Each worker
// accumulates its own cost counters; matches are assembled in video order
// so the result is bit-identical to a serial run.
func (e *Engine) retrieveParallel(order []int, q Query, res *Result) {
	type videoResult struct {
		matches []Match
		cost    Cost
	}
	results := make([]videoResult, len(order))
	sem := make(chan struct{}, e.opts.Parallel)
	var wg sync.WaitGroup
	for oi, vi := range order {
		wg.Add(1)
		go func(oi, vi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var c Cost
			c.VideosSeen = 1
			e.emit(TraceEvent{Kind: TraceVideoEnter, Video: vi, N: oi})
			matches := e.searchVideo(vi, q, &c)
			for _, m := range matches {
				e.emit(TraceEvent{Kind: TraceComplete, Video: vi, State: m.States[len(m.States)-1], Value: m.Score})
			}
			results[oi] = videoResult{matches: matches, cost: c}
		}(oi, vi)
	}
	wg.Wait()
	for _, vr := range results {
		res.Matches = append(res.Matches, vr.matches...)
		res.Cost.SimEvals += vr.cost.SimEvals
		res.Cost.EdgeEvals += vr.cost.EdgeEvals
		res.Cost.VideosSeen += vr.cost.VideosSeen
	}
}

// videoOrder implements Step 2: start from the highest-Π2 video containing
// the first step's events (checking B2), then repeatedly hop to the
// unvisited video with the strongest A2 affinity to the previous one.
// Videos lacking the events entirely are appended last (they can still
// host similar shots when AnnotatedOnly is false).
func (e *Engine) videoOrder(first Step, cost *Cost) []int {
	mv := e.m.NumVideos()
	var candidates []int
	for v := 0; v < mv; v++ {
		if e.videoHasStep(v, first) {
			candidates = append(candidates, v)
		}
	}
	var order []int
	visited := make([]bool, mv)
	if len(candidates) > 0 {
		// Seed with the max-Π2 candidate.
		best := candidates[0]
		for _, v := range candidates[1:] {
			if e.m.Pi2[v] > e.m.Pi2[best] {
				best = v
			}
		}
		cur := best
		for {
			visited[cur] = true
			order = append(order, cur)
			next := -1
			for _, v := range candidates {
				if visited[v] {
					continue
				}
				cost.EdgeEvals++
				if next == -1 || e.m.A2.At(cur, v) > e.m.A2.At(cur, next) {
					next = v
				}
			}
			if next == -1 {
				break
			}
			cur = next
		}
	}
	if !e.opts.AnnotatedOnly {
		for v := 0; v < mv; v++ {
			if !visited[v] {
				order = append(order, v)
			}
		}
	}
	return order
}

// videoHasStep reports whether video v contains every event of the step
// according to B2 (the Step-2 feature check).
func (e *Engine) videoHasStep(v int, step Step) bool {
	for _, ev := range step.Events {
		if e.m.B2.At(v, ev.Index()) == 0 {
			return false
		}
	}
	return true
}

// cell is one node of the Figure-3 lattice: the best-known path reaching a
// given state at a given query stage. Backpointers materialize the path.
type cell struct {
	state int     // global state index
	vi    int     // video index of the state
	w     float64 // w_j of the best path into this cell (Eqs. 12-13)
	score float64 // running SS of that path (Eq. 15 prefix)
	prev  *cell
}

// searchVideo runs the Figure-3 lattice over one video: every stage keeps
// every reachable candidate state with its best incoming path (Viterbi-style
// max over transitions), which is what lets the traversal "always try the
// right path" without dying on a locally attractive but non-continuable
// start. It returns up to Beam complete candidate sequences.
func (e *Engine) searchVideo(vi int, q Query, cost *Cost) []Match {
	visited := map[int]bool{vi: true}
	cells := e.lattice(vi, q, 0, nil, visited, cost)
	cells = topCells(cells, e.opts.Beam)
	matches := make([]Match, 0, len(cells))
	for _, c := range cells {
		matches = append(matches, e.matchFromCell(c))
	}
	return matches
}

// lattice expands video vi over query stages j0..C-1. entry, when non-nil,
// holds stage j0-1 cells in a previous video (cross-video continuation);
// otherwise stage j0 starts fresh with the Eq. 12 weight. It returns the
// final-stage cells, possibly from deeper videos reached by hops.
func (e *Engine) lattice(vi int, q Query, j0 int, entry []*cell, visited map[int]bool, cost *Cost) []*cell {
	var cur []*cell
	steps := q.steps()

	// Stage j0: enter the video.
	st := steps[j0]
	for _, s := range e.stepCandidates(vi, -1, st, q.Scope, cost) {
		sim := e.simCounted(s, st, cost)
		if entry == nil {
			// Eq. 12: w1 = Π1(s1) · sim(s1, e1).
			w := e.m.Pi1[s] * sim
			cur = append(cur, &cell{state: s, vi: vi, w: w, score: w})
			continue
		}
		// Cross-video entry: the transition factor is the level-2
		// affinity A2(prev video, this video).
		var best *cell
		var bestW float64
		for _, c := range entry {
			cost.EdgeEvals++
			w := c.w * e.m.A2.At(c.vi, vi) * sim
			if best == nil || w > bestW {
				best, bestW = c, w
			}
		}
		if best != nil {
			cur = append(cur, &cell{state: s, vi: vi, w: bestW, score: best.score + bestW, prev: best})
		}
	}
	if len(cur) == 0 {
		e.emit(TraceEvent{Kind: TraceDeadEnd, Video: vi, Stage: j0})
		return nil
	}
	cur = trimByWeight(cur, e.opts.Beam)
	e.emit(TraceEvent{Kind: TraceStage, Video: vi, Stage: j0, N: len(cur)})

	// Stages j0+1..C-1 within this video (Eq. 13), hopping by A2 when the
	// video runs out of candidates (Figure 3's "end of one video").
	for j := j0 + 1; j < len(steps); j++ {
		st := steps[j]
		var next []*cell
		for _, c := range cur {
			for _, s := range e.stepCandidates(vi, c.state, st, q.Scope, cost) {
				cost.EdgeEvals++
				w := c.w * e.transition(vi, c.state, s) * e.simCounted(s, st, cost)
				next = appendRelax(next, &cell{state: s, vi: vi, w: w, score: c.score + w, prev: c})
			}
		}
		if len(next) == 0 {
			if !e.opts.CrossVideo || st.MaxGapMS > 0 || (q.Scope != nil && q.Scope.Video != 0) {
				e.emit(TraceEvent{Kind: TraceDeadEnd, Video: vi, Stage: j})
				return nil
			}
			nv := e.nextVideo(vi, visited, st, cost)
			if nv < 0 {
				e.emit(TraceEvent{Kind: TraceDeadEnd, Video: vi, Stage: j})
				return nil
			}
			visited[nv] = true
			e.emit(TraceEvent{Kind: TraceHop, Video: nv, Stage: j})
			return e.lattice(nv, q, j, topCells(cur, e.opts.Beam), visited, cost)
		}
		cur = trimByWeight(next, e.opts.Beam)
		e.emit(TraceEvent{Kind: TraceStage, Video: vi, Stage: j, N: len(cur)})
	}
	return cur
}

// trimByWeight keeps the width best cells by current edge weight w — the
// per-stage beam of the traversal. Beam 1 reproduces the paper's greedy
// single-path walk.
func trimByWeight(cells []*cell, width int) []*cell {
	if len(cells) <= width {
		return cells
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].w != cells[j].w {
			return cells[i].w > cells[j].w
		}
		return cells[i].state < cells[j].state
	})
	return cells[:width]
}

// appendRelax inserts a cell, keeping only the best cell per state
// (the Viterbi relaxation).
func appendRelax(cells []*cell, c *cell) []*cell {
	for i, old := range cells {
		if old.state == c.state {
			if c.w > old.w {
				cells[i] = c
			}
			return cells
		}
	}
	return append(cells, c)
}

// topCells returns the width best cells by running score.
func topCells(cells []*cell, width int) []*cell {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].score != cells[j].score {
			return cells[i].score > cells[j].score
		}
		return cells[i].state < cells[j].state
	})
	if len(cells) > width {
		cells = cells[:width]
	}
	return cells
}

// matchFromCell materializes the path ending at c.
func (e *Engine) matchFromCell(c *cell) Match {
	var chain []*cell
	for x := c; x != nil; x = x.prev {
		chain = append(chain, x)
	}
	// Reverse into temporal order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	m := Match{Score: c.score}
	for _, x := range chain {
		m.States = append(m.States, x.state)
		m.Shots = append(m.Shots, e.m.States[x.state].Shot)
		m.Videos = append(m.Videos, e.m.VideoIDs[x.vi])
		m.Weights = append(m.Weights, x.w)
	}
	return m
}

// stepCandidates returns the global state indices of video vi that can
// serve the step after global state after (-1 for "any"). States annotated
// with every step event are preferred and found through the inverted event
// index; without AnnotatedOnly, all remaining states compete when no
// annotated one exists.
func (e *Engine) stepCandidates(vi, after int, step Step, scope *Scope, cost *Cost) []int {
	lo, hi := e.m.VideoStates(vi)
	start := lo
	prevMS := -1
	if after >= 0 {
		start = after + 1
		prevMS = e.m.States[after].StartMS
	}

	// Annotated candidates via the index: walk the (shortest) posting
	// list of the step's events, filtering by position, conjunction, and
	// gap constraints.
	var annotated []int
	if len(step.Events) > 0 {
		posting := e.index[vi][step.Events[0].Index()]
		for _, ev := range step.Events[1:] {
			if alt := e.index[vi][ev.Index()]; len(alt) < len(posting) {
				posting = alt
			}
		}
		// Binary search the first posting >= start.
		i := sort.SearchInts(posting, start)
		for ; i < len(posting); i++ {
			s := posting[i]
			if !scope.contains(e.m.States[s].StartMS) {
				continue
			}
			if prevMS >= 0 && !step.gapOK(prevMS, e.m.States[s].StartMS) {
				continue
			}
			if len(step.Events) > 1 && !stateHasStep(&e.m.States[s], step) {
				continue
			}
			annotated = append(annotated, s)
		}
	}
	if len(annotated) > 0 {
		return annotated
	}
	if e.opts.AnnotatedOnly {
		return nil
	}
	// Similarity fallback: every remaining state that is NOT a full
	// annotation match (those were exhausted above) competes by features.
	var plain []int
	for s := start; s < hi; s++ {
		if !scope.contains(e.m.States[s].StartMS) {
			continue
		}
		if prevMS >= 0 && !step.gapOK(prevMS, e.m.States[s].StartMS) {
			continue
		}
		if !stateHasStep(&e.m.States[s], step) {
			plain = append(plain, s)
		}
	}
	return plain
}

// transition returns the A1 factor between two states of the same video.
func (e *Engine) transition(vi, from, to int) float64 {
	a := e.m.LocalA[vi]
	return a.At(e.m.States[from].LocalIdx, e.m.States[to].LocalIdx)
}

// nextVideo picks the not-yet-visited video with the highest A2 affinity
// to cur among those containing ev (B2 check). It returns -1 when none
// qualifies.
func (e *Engine) nextVideo(cur int, used map[int]bool, step Step, cost *Cost) int {
	best := -1
	for v := 0; v < e.m.NumVideos(); v++ {
		if used[v] || !e.videoHasStep(v, step) {
			continue
		}
		cost.EdgeEvals++
		if best == -1 || e.m.A2.At(cur, v) > e.m.A2.At(cur, best) {
			best = v
		}
	}
	return best
}

func (e *Engine) simCounted(s int, step Step, cost *Cost) float64 {
	cost.SimEvals++
	return e.SimStep(s, step)
}

// SimStep averages Sim over the step's conjunct events.
func (e *Engine) SimStep(s int, step Step) float64 {
	if len(step.Events) == 0 {
		return 0
	}
	var sum float64
	for _, ev := range step.Events {
		sum += e.Sim(s, ev)
	}
	return sum / float64(len(step.Events))
}

func (e *Engine) finishMatch(p *path) Match {
	m := Match{
		States:  p.states,
		Weights: p.weights,
		Score:   p.score,
	}
	for i, s := range p.states {
		m.Shots = append(m.Shots, e.m.States[s].Shot)
		m.Videos = append(m.Videos, e.m.VideoIDs[p.videos[i]])
	}
	return m
}

// sortMatches orders matches by score descending with a deterministic
// tie-break on state indices.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		a, b := ms[i].States, ms[j].States
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// ExactMatch reports whether every step of the match lands on a state
// annotated with all of the corresponding step's events: the ground-truth
// criterion used by the precision experiments.
func ExactMatch(m *hmmm.Model, match Match, q Query) bool {
	steps := q.steps()
	if len(match.States) != len(steps) {
		return false
	}
	for i, s := range match.States {
		if !stateHasStep(&m.States[s], steps[i]) {
			return false
		}
	}
	return true
}

// MergeRanked deduplicates matches by state sequence (keeping the highest
// score), re-ranks, and truncates to topK. The server uses it to combine
// the results of the several linear patterns an MATN query may expand to.
func MergeRanked(matches []Match, topK int) []Match {
	if topK <= 0 {
		topK = DefaultTopK
	}
	best := make(map[string]Match, len(matches))
	for _, m := range matches {
		k := stateKey(m.States)
		if old, ok := best[k]; !ok || m.Score > old.Score {
			best[k] = m
		}
	}
	out := make([]Match, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sortMatches(out)
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

func stateKey(states []int) string {
	b := make([]byte, 0, len(states)*3)
	for _, s := range states {
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
	}
	return string(b)
}

package retrieval

import (
	"reflect"
	"testing"

	"github.com/videodb/hmmm/internal/videomodel"
)

// TestEffectiveParallelFallsBackOnSmallWork checks the small-work
// heuristic: on the equivalence corpus (well under
// DefaultMinParallelWork edge evaluations for an annotated two-step
// query), a Parallel=4 engine must resolve to the serial loop, while
// MinParallelWork=-1 must force the full requested fan-out and a tiny
// explicit threshold must re-enable it.
func TestEffectiveParallelFallsBackOnSmallWork(t *testing.T) {
	m := equivModel(t)
	q := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	steps := q.steps()

	eng, err := NewEngine(m, Options{TopK: 5, Beam: 4, AnnotatedOnly: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	order := eng.videoOrder(steps, nil, &Cost{})
	if len(order) < 4 {
		t.Fatalf("fixture too small: only %d candidate videos", len(order))
	}
	work := eng.estimateParallelWork(order, steps)
	if work <= 0 {
		t.Fatalf("estimateParallelWork = %d, want > 0", work)
	}
	if work >= DefaultMinParallelWork {
		t.Skipf("fixture work estimate %d no longer below threshold %d; pick a smaller corpus",
			work, DefaultMinParallelWork)
	}
	if got := eng.effectiveParallel(order, steps); got != 1 {
		t.Errorf("effectiveParallel on small work = %d, want 1 (estimate %d)", got, work)
	}

	forced := eng.WithOptions(Options{TopK: 5, Beam: 4, AnnotatedOnly: true, Parallel: 4, MinParallelWork: -1})
	if got := forced.effectiveParallel(order, steps); got != 4 {
		t.Errorf("effectiveParallel with heuristic disabled = %d, want 4", got)
	}

	// A threshold small enough that each of the 4 workers clears it.
	low := eng.WithOptions(Options{TopK: 5, Beam: 4, AnnotatedOnly: true, Parallel: 4,
		MinParallelWork: work / 4})
	if got := low.effectiveParallel(order, steps); got != 4 {
		t.Errorf("effectiveParallel with low threshold = %d, want 4 (estimate %d)", got, work)
	}

	// Between the extremes the count scales with the estimate.
	mid := eng.WithOptions(Options{TopK: 5, Beam: 4, AnnotatedOnly: true, Parallel: 4,
		MinParallelWork: work / 2})
	if got := mid.effectiveParallel(order, steps); got != 2 {
		t.Errorf("effectiveParallel with half-work threshold = %d, want 2 (estimate %d)", got, work)
	}
}

// TestFallbackKeepsResultsIdentical confirms the safety property that
// makes the heuristic free to apply: whatever worker count
// effectiveParallel picks under the default threshold, the results
// equal both a pure-serial run and a forced-parallel run.
func TestFallbackKeepsResultsIdentical(t *testing.T) {
	m := equivModel(t)
	for qi, q := range equivQueries(m) {
		base := Options{TopK: 5, Beam: 4, CrossVideo: true, AnnotatedOnly: true}
		serial := mustRetrieve(t, m, base, q)

		auto := base
		auto.Parallel = 4 // default MinParallelWork governs
		requireEqualResults(t, serial, mustRetrieve(t, m, auto, q))

		forced := base
		forced.Parallel = 4
		forced.MinParallelWork = -1
		requireEqualResults(t, serial, mustRetrieve(t, m, forced, q))

		_ = qi
	}
}

// TestCacheBuildBitIdenticalAcrossWorkerCounts is the satellite
// determinism check for the engine's derived caches: the dense Eq. 14
// similarity table and the inverted event index must be byte-for-byte
// identical whether built serially or with any worker count.
func TestCacheBuildBitIdenticalAcrossWorkerCounts(t *testing.T) {
	m := equivModel(t)
	ref, err := NewEngine(m, Options{BuildWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 9} {
		eng, err := NewEngine(m, Options{BuildWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.shared.sim, eng.shared.sim) {
			t.Errorf("BuildWorkers=%d: similarity table differs from serial build", workers)
		}
		if !reflect.DeepEqual(ref.shared.index, eng.shared.index) {
			t.Errorf("BuildWorkers=%d: event index differs from serial build", workers)
		}
	}
}

package retrieval

import (
	"errors"
	"fmt"
	"sort"

	"github.com/videodb/hmmm/internal/videomodel"
)

// FeatureContribution is one feature's term of the Eq. 14 similarity sum.
type FeatureContribution struct {
	Feature    int // feature index
	Event      videomodel.Event
	Weight     float64 // P1,2(e, f)
	StateValue float64 // B1(s, f)
	EventMean  float64 // B1'(e, f)
	Term       float64 // Weight * (1 - |StateValue - EventMean|) / EventMean
}

// StepExplanation decomposes one step's edge weight (Eqs. 12-13) into its
// factors, with the per-feature breakdown of the similarity.
type StepExplanation struct {
	State      int
	Shot       videomodel.ShotID
	Pi         float64 // Π1 factor (first step only)
	Transition float64 // A1 (same video) or A2 (cross-video hop) factor
	CrossVideo bool
	Sim        float64
	Weight     float64 // the step's w_j
	// Top feature contributions across the step's events, strongest
	// first, capped at ExplainTopFeatures per event.
	Features []FeatureContribution
}

// ExplainTopFeatures caps the per-event feature breakdown in explanations.
const ExplainTopFeatures = 5

// Explain decomposes a retrieved match into per-step factor explanations:
// the answer to "why did this sequence score what it scored". The weights
// recomputed here equal the engine's within floating-point error.
func (e *Engine) Explain(match Match, q Query) ([]StepExplanation, error) {
	steps := q.steps()
	if len(match.States) != len(steps) {
		return nil, fmt.Errorf("retrieval: match has %d steps, query has %d", len(match.States), len(steps))
	}
	if len(match.States) == 0 {
		return nil, errors.New("retrieval: empty match")
	}
	out := make([]StepExplanation, len(match.States))
	w := 0.0
	for j, s := range match.States {
		if s < 0 || s >= e.m.NumStates() {
			return nil, fmt.Errorf("retrieval: match state %d out of range", s)
		}
		st := steps[j]
		ex := StepExplanation{
			State: s,
			Shot:  e.m.States[s].Shot,
			Sim:   e.SimStep(s, st),
		}
		if j == 0 {
			ex.Pi = e.m.Pi1[s]
			w = ex.Pi * ex.Sim
		} else {
			prev := match.States[j-1]
			prevVid := e.m.States[prev].VideoIdx
			curVid := e.m.States[s].VideoIdx
			if prevVid == curVid {
				ex.Transition = e.transition(curVid, prev, s)
			} else {
				ex.CrossVideo = true
				ex.Transition = e.m.A2.At(prevVid, curVid)
			}
			w = w * ex.Transition * ex.Sim
		}
		ex.Weight = w
		ex.Features = e.featureBreakdown(s, st)
		out[j] = ex
	}
	return out, nil
}

// featureBreakdown returns the strongest Eq. 14 terms for each event of
// the step.
func (e *Engine) featureBreakdown(s int, step Step) []FeatureContribution {
	var all []FeatureContribution
	bRow := e.m.B1.Row(s)
	for _, ev := range step.Events {
		ci := ev.Index()
		meanRow := e.m.B1Prime.Row(ci)
		pRow := e.m.P12.Row(ci)
		var terms []FeatureContribution
		for f, mean := range meanRow {
			if mean <= e.opts.SimEpsilon {
				continue
			}
			d := bRow[f] - mean
			if d < 0 {
				d = -d
			}
			terms = append(terms, FeatureContribution{
				Feature:    f,
				Event:      ev,
				Weight:     pRow[f],
				StateValue: bRow[f],
				EventMean:  mean,
				Term:       pRow[f] * (1 - d) / mean,
			})
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i].Term > terms[j].Term })
		if len(terms) > ExplainTopFeatures {
			terms = terms[:ExplainTopFeatures]
		}
		all = append(all, terms...)
	}
	return all
}

// QueryByExample ranks the model's states by Eq. 14-style similarity to a
// raw (un-normalized) feature vector — the Query-by-Example mode of the
// MMM lineage (the paper's ref. [15] image retrieval). The vector is
// normalized with the model's Eq. 3 bounds. When concept is a valid
// event, that concept's learned P1,2 weights emphasize its discriminative
// features; EventNone weighs all features uniformly.
func (e *Engine) QueryByExample(raw []float64, concept videomodel.Event, topK int) ([]Match, error) {
	if len(raw) != e.m.K() {
		return nil, fmt.Errorf("retrieval: example has %d features, model has %d", len(raw), e.m.K())
	}
	if topK <= 0 {
		topK = DefaultTopK
	}
	probe := append([]float64(nil), raw...)
	e.m.Scaler.TransformRow(probe)

	uniform := 1 / float64(e.m.K())
	var pRow []float64
	if concept.Valid() {
		pRow = e.m.P12.Row(concept.Index())
	}
	matches := make([]Match, 0, e.m.NumStates())
	for s := 0; s < e.m.NumStates(); s++ {
		bRow := e.m.B1.Row(s)
		var sim float64
		for f, v := range probe {
			w := uniform
			if pRow != nil {
				w = pRow[f]
			}
			d := bRow[f] - v
			if d < 0 {
				d = -d
			}
			sim += w * (1 - d)
		}
		matches = append(matches, Match{
			States: []int{s},
			Shots:  []videomodel.ShotID{e.m.States[s].Shot},
			Videos: []videomodel.VideoID{e.m.VideoIDs[e.m.States[s].VideoIdx]},
			Score:  sim,
		})
	}
	sortMatches(matches)
	if len(matches) > topK {
		matches = matches[:topK]
	}
	return matches, nil
}

// Differential tests of the engine against the exhaustive brute-force
// oracle, through the shared retrievaltest harness (the shard suite
// runs the same comparisons over the scatter-gather path). This file is
// an external test package: retrievaltest imports retrieval, so the
// in-package tests cannot use it.
package retrieval_test

import (
	"fmt"
	"testing"

	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/retrieval/retrievaltest"
)

func TestEngineSingleStepMatchesOracleExactly(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		m := retrievaltest.RandomModel(t, retrievaltest.Config{
			Seed: seed, Videos: int(seed) + 2, MaxShots: 10, Events: 3,
		})
		topK := 10
		eng, err := retrieval.NewEngine(m, retrieval.Options{
			AnnotatedOnly: true, TopK: topK, Beam: topK,
		})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range retrievaltest.Queries(m) {
			if !retrievaltest.SingleStep(q) {
				continue
			}
			want := retrievaltest.Oracle(t, m, q, topK)
			got, err := eng.Retrieve(q)
			if err != nil {
				t.Fatal(err)
			}
			retrievaltest.RequireSameMatches(t,
				fmt.Sprintf("seed=%d q=%d", seed, qi), want.Matches, got.Matches)
		}
	}
}

func TestEngineMultiStepOracleConsistent(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		m := retrievaltest.RandomModel(t, retrievaltest.Config{
			Seed: seed, Videos: int(seed) + 2, MaxShots: 10, Events: 3, LearnP12: seed%2 == 0,
		})
		eng, err := retrieval.NewEngine(m, retrieval.Options{AnnotatedOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range retrievaltest.Queries(m) {
			if retrievaltest.SingleStep(q) {
				continue
			}
			full := retrievaltest.Oracle(t, m, q, retrievaltest.OracleLimit)
			got, err := eng.Retrieve(q)
			if err != nil {
				t.Fatal(err)
			}
			retrievaltest.RequireOracleConsistent(t,
				fmt.Sprintf("seed=%d q=%d", seed, qi), full, got.Matches)
		}
	}
}

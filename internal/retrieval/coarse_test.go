// Differential tests of the coarse→fine two-stage pipeline against the
// exact engine: bit-identity whenever the prefilter cannot prune
// (CoarseCandidates = 0, or a limit covering the whole pool), and the
// recall@K quality gate when it does. External test package for the
// same reason as differential_test.go.
package retrieval_test

import (
	"fmt"
	"testing"

	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/retrieval/retrievaltest"
)

// coarseCorpus builds the seeded corpora the coarse differential and
// recall tests share: big enough (40 videos) that a per-step budget of
// 8 prunes the archive for every query shape — 80% of videos dropped
// for single-step probes, 40% even for the widest (3-step) pattern.
func coarseCorpus(t *testing.T, seed uint64) *hmmm.Model {
	t.Helper()
	return retrievaltest.RandomModel(t, retrievaltest.Config{
		Seed: seed, Videos: 40, MaxShots: 10, Events: 4, FeatureDim: 6, LearnP12: true,
	})
}

// TestCoarseUnlimitedBitIdentical pins the exactness contract: with a
// candidate limit covering every video the prefilter is the identity,
// so the two-stage engine must return bit-identical rankings to the
// exact engine — in annotated-only and similarity-fallback mode, over
// every corpus query shape (including the scoped query, which bypasses
// the prefilter).
func TestCoarseUnlimitedBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		m := coarseCorpus(t, seed)
		for _, annotated := range []bool{true, false} {
			base := retrieval.Options{TopK: 8, Beam: 4, AnnotatedOnly: annotated}
			exact, err := retrieval.NewEngine(m, base)
			if err != nil {
				t.Fatal(err)
			}
			withCoarse := base
			withCoarse.CoarseCandidates = m.NumVideos()
			coarse, err := retrieval.NewEngine(m, withCoarse)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range retrievaltest.Queries(m) {
				want, err := exact.Retrieve(q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := coarse.Retrieve(q)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("seed=%d annotated=%v q=%d", seed, annotated, qi)
				retrievaltest.RequireSameMatches(t, label, want.Matches, got.Matches)
			}
		}
	}
}

// TestCoarseZeroIsExact pins the escape hatch: CoarseCandidates = 0
// must leave the engine on the exact-only path, bit for bit.
func TestCoarseZeroIsExact(t *testing.T) {
	m := coarseCorpus(t, 5)
	base := retrieval.Options{TopK: 8, Beam: 4, AnnotatedOnly: true}
	exact, err := retrieval.NewEngine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	zero := base
	zero.CoarseCandidates = 0
	viaZero, err := retrieval.NewEngine(m, zero)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range retrievaltest.Queries(m) {
		want, err := exact.Retrieve(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := viaZero.Retrieve(q)
		if err != nil {
			t.Fatal(err)
		}
		retrievaltest.RequireSameMatches(t, fmt.Sprintf("q=%d", qi), want.Matches, got.Matches)
		if want.Cost != got.Cost {
			t.Fatalf("q=%d: cost %+v, want %+v", qi, got.Cost, want.Cost)
		}
	}
}

// TestCoarseFineRecall is the quality gate the CI bench-scale smoke
// target runs: with the prefilter pruning every query shape (a
// per-step budget of 8 keeps 8–24 of 40 videos), corpus-level
// recall@10 against the exact engine must stay >= 0.95.
func TestCoarseFineRecall(t *testing.T) {
	const limit = 8
	var rs retrievaltest.RecallStats
	for seed := uint64(1); seed <= 6; seed++ {
		m := coarseCorpus(t, seed)
		base := retrieval.Options{TopK: 10, Beam: 4, AnnotatedOnly: true}
		exact, err := retrieval.NewEngine(m, base)
		if err != nil {
			t.Fatal(err)
		}
		pruned := base
		pruned.CoarseCandidates = limit
		coarse, err := retrieval.NewEngine(m, pruned)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range retrievaltest.Queries(m) {
			want, err := exact.Retrieve(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coarse.Retrieve(q)
			if err != nil {
				t.Fatal(err)
			}
			rs.Observe(want.Matches, got.Matches, 10)
		}
	}
	t.Logf("coarse→fine recall@10 over %d queries: %.3f (min per-query %.3f, %d/%d sequences)",
		rs.Queries, rs.Recall(), rs.Min, rs.Hits, rs.Wanted)
	if rs.Recall() < 0.95 {
		t.Fatalf("corpus recall@10 = %.3f, want >= 0.95 (%d/%d sequences)",
			rs.Recall(), rs.Hits, rs.Wanted)
	}
}

// TestCoarsePrunesWork verifies the prefilter actually prunes: with a
// limit well below the candidate pool the two-stage engine must expand
// at most limit videos where the exact engine expands the pool.
func TestCoarsePrunesWork(t *testing.T) {
	m := coarseCorpus(t, 7)
	const limit = 8
	base := retrieval.Options{TopK: 10, Beam: 4, AnnotatedOnly: true}
	exact, err := retrieval.NewEngine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	pruned := base
	pruned.CoarseCandidates = limit
	coarse, err := retrieval.NewEngine(m, pruned)
	if err != nil {
		t.Fatal(err)
	}
	q := retrievaltest.Queries(m)[0]
	want, err := exact.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coarse.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost.VideosSeen > limit {
		t.Fatalf("coarse expanded %d videos, want <= %d", got.Cost.VideosSeen, limit)
	}
	if want.Cost.VideosSeen <= limit {
		t.Fatalf("fixture too small: exact expanded only %d videos", want.Cost.VideosSeen)
	}
}

// TestCoarseWithOptionsTogglesPrefilter covers the derived-cache key:
// deriving a coarse engine from an exact one (and back) must rebuild or
// drop the coarse index, and a limit-only change must reuse the caches.
func TestCoarseWithOptionsTogglesPrefilter(t *testing.T) {
	m := coarseCorpus(t, 8)
	base := retrieval.Options{TopK: 8, Beam: 4, AnnotatedOnly: true}
	exact, err := retrieval.NewEngine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.CoarseCandidates = m.NumVideos()
	coarse := exact.WithOptions(on)
	off := coarse.WithOptions(base)
	narrower := on
	narrower.CoarseCandidates = 6
	narrow := coarse.WithOptions(narrower)
	for qi, q := range retrievaltest.Queries(m) {
		want, err := exact.Retrieve(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coarse.Retrieve(q)
		if err != nil {
			t.Fatal(err)
		}
		retrievaltest.RequireSameMatches(t, fmt.Sprintf("derived-on q=%d", qi), want.Matches, got.Matches)
		back, err := off.Retrieve(q)
		if err != nil {
			t.Fatal(err)
		}
		retrievaltest.RequireSameMatches(t, fmt.Sprintf("derived-off q=%d", qi), want.Matches, back.Matches)
		if _, err := narrow.Retrieve(q); err != nil {
			t.Fatal(err)
		}
	}
}

// Cancellation and deadline semantics of RetrieveContext. These live in
// an external test package so they can drive the engine through the
// fault-injection harness (faultinject imports retrieval for the Tracer
// type, which would cycle with an in-package test).
package retrieval_test

import (
	"context"
	"testing"
	"time"

	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/faultinject"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/videomodel"
)

// cancelModel builds a mid-size archive: enough lattice work that a
// slowed traversal overruns any millisecond deadline, small enough that
// the -race runs stay quick.
func cancelModel(t testing.TB) *hmmm.Model {
	t.Helper()
	c, err := dataset.Build(dataset.Config{Seed: 77, Videos: 12, Shots: 1200, Annotated: 120, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := hmmm.Build(c.Archive, c.Features, hmmm.BuildOptions{LearnP12: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cancelQuery() retrieval.Query {
	return retrieval.NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
}

// TestRetrieveContextBackgroundIdentical pins the zero-cost property: a
// never-cancelled context changes nothing about the result.
func TestRetrieveContextBackgroundIdentical(t *testing.T) {
	m := cancelModel(t)
	eng, err := retrieval.NewEngine(m, retrieval.Options{Beam: 4, TopK: 10, AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	q := cancelQuery()
	plain, err := eng.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := eng.RetrieveContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ctxed.Cost != plain.Cost {
		t.Errorf("cost differs: %+v vs %+v", ctxed.Cost, plain.Cost)
	}
	if ctxed.Cost.Truncated {
		t.Error("background context marked truncated")
	}
	if len(ctxed.Matches) != len(plain.Matches) {
		t.Fatalf("match count differs: %d vs %d", len(ctxed.Matches), len(plain.Matches))
	}
	for i := range plain.Matches {
		if ctxed.Matches[i].Score != plain.Matches[i].Score {
			t.Errorf("match %d score %v vs %v", i, ctxed.Matches[i].Score, plain.Matches[i].Score)
		}
	}
}

// TestRetrieveContextDeadline is the headline resilience property: a
// query that would otherwise run for a long time (each lattice trace
// event is slowed artificially) honors a 1ms deadline, returning a valid
// partial ranking with Truncated set within a small multiple of the
// deadline instead of running to completion.
func TestRetrieveContextDeadline(t *testing.T) {
	m := cancelModel(t)
	slow := &faultinject.SlowTracer{PerEvent: time.Millisecond}
	eng, err := retrieval.NewEngine(m, retrieval.Options{
		Beam: 8, TopK: 10, CrossVideo: true, Tracer: slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := eng.RetrieveContext(ctx, cancelQuery())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("expired context must not error: %v", err)
	}
	if !res.Cost.Truncated {
		t.Error("Truncated not set on deadline expiry")
	}
	// ~10ms is the intent; allow generous slack for loaded CI machines.
	if elapsed > 500*time.Millisecond {
		t.Errorf("deadline overrun: took %v", elapsed)
	}
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i].Score > res.Matches[i-1].Score {
			t.Error("partial result not ranked")
		}
	}
	for _, match := range res.Matches {
		for _, s := range match.States {
			if s < 0 || s >= m.NumStates() {
				t.Fatalf("partial result holds invalid state %d", s)
			}
		}
	}
	t.Logf("deadline 1ms: returned in %v after %d trace events, %d matches",
		elapsed, slow.Events(), len(res.Matches))
}

// TestRetrieveContextPreCancelled: a context dead on arrival yields an
// empty truncated result, not an error or a full search.
func TestRetrieveContextPreCancelled(t *testing.T) {
	m := cancelModel(t)
	eng, err := retrieval.NewEngine(m, retrieval.Options{Beam: 4, TopK: 10, AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.RetrieveContext(ctx, cancelQuery())
	if err != nil {
		t.Fatalf("cancelled context must not error: %v", err)
	}
	if !res.Cost.Truncated {
		t.Error("Truncated not set")
	}
	if len(res.Matches) != 0 {
		t.Errorf("pre-cancelled query returned %d matches", len(res.Matches))
	}
	if res.Cost.VideosSeen != 0 {
		t.Errorf("pre-cancelled query expanded %d videos", res.Cost.VideosSeen)
	}
}

// TestRetrieveContextCancelParallel cancels a fanned-out retrieval
// mid-flight; under -race this asserts the workers' context polling and
// the committed-prefix bookkeeping are data-race free, and that the
// pipeline unwinds promptly.
func TestRetrieveContextCancelParallel(t *testing.T) {
	m := cancelModel(t)
	slow := &faultinject.SlowTracer{PerEvent: 200 * time.Microsecond}
	eng, err := retrieval.NewEngine(m, retrieval.Options{
		Beam: 8, TopK: 10, CrossVideo: true, Tracer: slow,
		Parallel: 4, MinParallelWork: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := eng.RetrieveContext(ctx, cancelQuery())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled parallel retrieve errored: %v", err)
	}
	if !res.Cost.Truncated {
		t.Error("Truncated not set after mid-flight cancel")
	}
	if elapsed > 2*time.Second {
		t.Errorf("parallel cancel unwound too slowly: %v", elapsed)
	}
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i].Score > res.Matches[i-1].Score {
			t.Error("partial result not ranked")
		}
	}
}

// TestRetrieveContextDeadlineSerialLargeBeam drives the serial path with
// a wide beam and the similarity fallback (the pathological query class
// the admission/timeout story exists for) and asserts the per-edge tick
// polling aborts it.
func TestRetrieveContextDeadlineSerialLargeBeam(t *testing.T) {
	m := cancelModel(t)
	slow := &faultinject.SlowTracer{PerEvent: 500 * time.Microsecond}
	eng, err := retrieval.NewEngine(m, retrieval.Options{
		Beam: 64, TopK: 50, CrossVideo: true, AnnotatedOnly: false, Tracer: slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := retrieval.Query{Events: []videomodel.Event{
		videomodel.EventGoal, videomodel.EventFreeKick, videomodel.EventFoul,
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := eng.RetrieveContext(ctx, q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cost.Truncated {
		t.Error("Truncated not set")
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("pathological query overran its deadline by too much: %v", elapsed)
	}
}

package retrieval

import (
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/par"
	"github.com/videodb/hmmm/internal/videomodel"
)

// Sim evaluates the Eq. 14 feature-weighted similarity between state s and
// event concept ev:
//
//	sim(s, e) = Σ_y P1,2(e, f_y) · (1 - |B1(s, f_y) - B1'(e, f_y)|) / B1'(e, f_y)
//
// over the features whose per-event mean B1'(e, f_y) exceeds SimEpsilon.
// With the engine's similarity cache (the default) this is a single table
// lookup; under Options.NoSimCache it recomputes the sum from the raw
// matrix rows. Both paths produce bit-identical values — the table is
// filled by the same kernel.
func (e *Engine) Sim(s int, ev videomodel.Event) float64 {
	if sh := e.shared; sh.sim != nil {
		return sh.sim[s*sh.concepts+ev.Index()]
	}
	ci := ev.Index()
	return simKernel(e.m.B1.Row(s), e.m.B1Prime.Row(ci), e.m.P12.Row(ci), e.opts.SimEpsilon)
}

// simKernel is the shared Eq. 14 evaluation over one state row and one
// concept's mean/importance rows. The cached table and the direct path
// both call it, which is what guarantees bit-identical scores.
func simKernel(bRow, meanRow, pRow []float64, eps float64) float64 {
	var sim float64
	for y, mean := range meanRow {
		if mean <= eps {
			continue
		}
		d := bRow[y] - mean
		if d < 0 {
			d = -d
		}
		sim += pRow[y] * (1 - d) / mean
	}
	return sim
}

// buildSimTable precomputes sim(s, e) for every (state, concept) pair into
// a row-major NumStates × NumConcepts table. States are independent and
// each writes only its own table row, so the fill fans out over the
// requested worker count (0 = GOMAXPROCS) in contiguous chunks with
// bit-identical output for any count.
func buildSimTable(m *hmmm.Model, eps float64, workers int) []float64 {
	n, c, k := m.NumStates(), m.NumConcepts(), m.K()
	table := make([]float64, n*c)
	b1, bp, p12 := m.B1.Flat(), m.B1Prime.Flat(), m.P12.Flat()
	par.ForChunks(workers, n, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			bRow := b1[s*k : (s+1)*k]
			out := table[s*c : (s+1)*c]
			for ci := 0; ci < c; ci++ {
				out[ci] = simKernel(bRow, bp[ci*k:(ci+1)*k], p12[ci*k:(ci+1)*k], eps)
			}
		}
	})
	return table
}

package retrieval

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/videomodel"
	"github.com/videodb/hmmm/internal/xrand"
)

// fixtureModel builds a 3-video HMMM with event-clustered synthetic
// features:
//
//	v0: [free_kick] [free_kick+goal] [corner_kick]
//	v1: [goal] [free_kick] [goal]
//	v2: [foul] [corner_kick]
func fixtureModel(t testing.TB) *hmmm.Model {
	t.Helper()
	rng := xrand.New(101)
	feats := make(map[videomodel.ShotID][]float64)
	gen := func(events []videomodel.Event) []float64 {
		f := []float64{
			rng.Norm(0.2, 0.03), // goal channel
			rng.Norm(0.2, 0.03), // free kick channel
			rng.Norm(0.2, 0.03), // corner channel
			rng.Norm(0.2, 0.03), // foul channel
		}
		for _, e := range events {
			switch e {
			case videomodel.EventGoal:
				f[0] = rng.Norm(0.9, 0.02)
			case videomodel.EventFreeKick:
				f[1] = rng.Norm(0.85, 0.02)
			case videomodel.EventCornerKick:
				f[2] = rng.Norm(0.8, 0.02)
			case videomodel.EventFoul:
				f[3] = rng.Norm(0.8, 0.02)
			}
		}
		return f
	}
	plans := [][][]videomodel.Event{
		{{videomodel.EventFreeKick}, {videomodel.EventFreeKick, videomodel.EventGoal}, {videomodel.EventCornerKick}},
		{{videomodel.EventGoal}, {videomodel.EventFreeKick}, {videomodel.EventGoal}},
		{{videomodel.EventFoul}, {videomodel.EventCornerKick}},
	}
	var videos []*videomodel.Video
	next := videomodel.ShotID(0)
	for vi, plan := range plans {
		v := &videomodel.Video{ID: videomodel.VideoID(vi + 1)}
		for si, events := range plan {
			s := &videomodel.Shot{
				ID: next, Video: v.ID, Index: si,
				StartMS: si * 1000, EndMS: (si + 1) * 1000,
				Events: events,
			}
			next++
			feats[s.ID] = gen(events)
			v.Shots = append(v.Shots, s)
		}
		videos = append(videos, v)
	}
	a, err := videomodel.NewArchive(videos)
	if err != nil {
		t.Fatal(err)
	}
	m, err := hmmm.Build(a, feats, hmmm.BuildOptions{LearnP12: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQueryValidate(t *testing.T) {
	if err := (Query{}).Validate(); err == nil {
		t.Error("empty query accepted")
	}
	if err := (Query{Events: []videomodel.Event{videomodel.EventNone}}).Validate(); err == nil {
		t.Error("EventNone accepted")
	}
	if err := (Query{Events: []videomodel.Event{videomodel.EventGoal}}).Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Error("nil model accepted")
	}
	m := fixtureModel(t)
	m.Pi1[0] = 99 // break an invariant
	if _, err := NewEngine(m, Options{}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSimPrefersAnnotatedStates(t *testing.T) {
	m := fixtureModel(t)
	e, err := NewEngine(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Global state 3 is v1's goal shot; state 0 is v0's free kick.
	goalSim := e.Sim(3, videomodel.EventGoal)
	otherSim := e.Sim(0, videomodel.EventGoal)
	if goalSim <= otherSim {
		t.Errorf("sim(goal shot, goal) = %v should exceed sim(free kick shot, goal) = %v", goalSim, otherSim)
	}
}

func TestRetrieveFindsExactPattern(t *testing.T) {
	m := fixtureModel(t)
	e, err := NewEngine(m, Options{AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Events: []videomodel.Event{videomodel.EventGoal, videomodel.EventFreeKick}}
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches for goal->free_kick")
	}
	top := res.Matches[0]
	if !ExactMatch(m, top, q) {
		t.Errorf("top match not annotation-exact: states %v", top.States)
	}
	// The only exact sequence is v1: global states 3 -> 4.
	if top.States[0] != 3 || top.States[1] != 4 {
		t.Errorf("top match states = %v, want [3 4]", top.States)
	}
	if len(top.Weights) != 2 || top.Score <= 0 {
		t.Errorf("match weights/score malformed: %+v", top)
	}
}

func TestRetrieveEmptyQueryError(t *testing.T) {
	e, _ := NewEngine(fixtureModel(t), Options{})
	if _, err := e.Retrieve(Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestCrossVideoContinuation(t *testing.T) {
	m := fixtureModel(t)
	q := Query{Events: []videomodel.Event{videomodel.EventCornerKick, videomodel.EventFoul}}

	// Within any single video there is no corner followed by a foul.
	same, err := NewEngine(m, Options{AnnotatedOnly: true, CrossVideo: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := same.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range res.Matches {
		if ExactMatch(m, match, q) {
			t.Fatalf("unexpected same-video exact match: %v", match.States)
		}
	}

	cross, err := NewEngine(m, Options{AnnotatedOnly: true, CrossVideo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err = cross.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, match := range res.Matches {
		if ExactMatch(m, match, q) {
			found = true
			if match.Videos[0] == match.Videos[1] {
				t.Errorf("cross-video match stayed in one video: %+v", match)
			}
		}
	}
	if !found {
		t.Error("cross-video continuation found no exact corner->foul pattern")
	}
}

func TestTemporalOrderWithinVideo(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{AnnotatedOnly: true, Beam: 4})
	q := Query{Events: []videomodel.Event{videomodel.EventFreeKick, videomodel.EventGoal}}
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range res.Matches {
		for i := 1; i < len(match.States); i++ {
			if match.Videos[i] == match.Videos[i-1] && match.States[i] <= match.States[i-1] {
				t.Errorf("non-monotone same-video steps: %v", match.States)
			}
		}
	}
}

func TestBeamWideningFindsMore(t *testing.T) {
	m := fixtureModel(t)
	q := Query{Events: []videomodel.Event{videomodel.EventGoal}}
	narrow, _ := NewEngine(m, Options{AnnotatedOnly: true, Beam: 1})
	wide, _ := NewEngine(m, Options{AnnotatedOnly: true, Beam: 8})
	rn, err := narrow.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := wide.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Matches) < len(rn.Matches) {
		t.Errorf("beam 8 found %d, beam 1 found %d", len(rw.Matches), len(rn.Matches))
	}
	// Three goal shots exist: the wide beam should surface all of them.
	if len(rw.Matches) < 3 {
		t.Errorf("beam 8 found %d single-goal matches, want >= 3", len(rw.Matches))
	}
}

func TestRetrieveDeterministic(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{Beam: 4, CrossVideo: true})
	q := Query{Events: []videomodel.Event{videomodel.EventGoal, videomodel.EventFreeKick}}
	a, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatalf("match counts differ: %d vs %d", len(a.Matches), len(b.Matches))
	}
	for i := range a.Matches {
		if a.Matches[i].Score != b.Matches[i].Score {
			t.Fatalf("match %d score differs", i)
		}
	}
}

func TestBruteForceEnumeratesAll(t *testing.T) {
	m := fixtureModel(t)
	q := Query{Events: []videomodel.Event{videomodel.EventFreeKick, videomodel.EventGoal}}
	res, err := BruteForce(m, q, 100)
	if err != nil {
		t.Fatal(err)
	}
	// v0: free_kick at {0,1}, goal at {1}: sequences 0->1. v1: free_kick
	// at {4}, goal at {5}: 4->5. Total 2.
	if len(res.Matches) != 2 {
		t.Fatalf("brute force found %d sequences, want 2", len(res.Matches))
	}
	for _, match := range res.Matches {
		if !ExactMatch(m, match, q) {
			t.Errorf("brute force returned non-exact match %v", match.States)
		}
	}
	if got := GroundTruthCount(m, q); got != 2 {
		t.Errorf("GroundTruthCount = %d, want 2", got)
	}
}

func TestBruteForceRanksDescending(t *testing.T) {
	m := fixtureModel(t)
	res, err := BruteForce(m, Query{Events: []videomodel.Event{videomodel.EventGoal}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i].Score > res.Matches[i-1].Score {
			t.Error("brute force matches not sorted by score")
		}
	}
}

func TestBruteForceErrors(t *testing.T) {
	if _, err := BruteForce(fixtureModel(t), Query{}, 5); err == nil {
		t.Error("empty query accepted")
	}
}

func TestGreedyTopMatchAgreesWithBruteForce(t *testing.T) {
	m := fixtureModel(t)
	q := Query{Events: []videomodel.Event{videomodel.EventGoal, videomodel.EventFreeKick}}
	bf, err := BruteForce(m, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(m, Options{AnnotatedOnly: true})
	greedy, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Matches) == 0 || len(greedy.Matches) == 0 {
		t.Fatal("one of the methods found nothing")
	}
	bt, gt := bf.Matches[0], greedy.Matches[0]
	if bt.States[0] != gt.States[0] || bt.States[1] != gt.States[1] {
		t.Errorf("top matches differ: brute %v vs greedy %v", bt.States, gt.States)
	}
}

func TestGreedyCostLowerThanBruteForce(t *testing.T) {
	// Build a denser corpus: one video with many alternating goal / free
	// kick shots so brute force enumerates combinatorially many paths.
	rng := xrand.New(55)
	feats := make(map[videomodel.ShotID][]float64)
	v := &videomodel.Video{ID: 1}
	for i := 0; i < 24; i++ {
		ev := videomodel.EventGoal
		if i%2 == 1 {
			ev = videomodel.EventFreeKick
		}
		s := &videomodel.Shot{
			ID: videomodel.ShotID(i), Video: 1, Index: i,
			StartMS: i * 1000, EndMS: (i + 1) * 1000,
			Events: []videomodel.Event{ev},
		}
		feats[s.ID] = []float64{rng.Float64(), rng.Float64()}
		v.Shots = append(v.Shots, s)
	}
	a, err := videomodel.NewArchive([]*videomodel.Video{v})
	if err != nil {
		t.Fatal(err)
	}
	m, err := hmmm.Build(a, feats, hmmm.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Events: []videomodel.Event{
		videomodel.EventGoal, videomodel.EventFreeKick, videomodel.EventGoal, videomodel.EventFreeKick,
	}}
	bf, err := BruteForce(m, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(m, Options{AnnotatedOnly: true})
	greedy, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Matches) == 0 {
		t.Fatal("greedy found nothing")
	}
	if greedy.Cost.SimEvals*5 > bf.Cost.SimEvals {
		t.Errorf("greedy sim evals %d not clearly below brute force %d", greedy.Cost.SimEvals, bf.Cost.SimEvals)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TopK != DefaultTopK || o.Beam != DefaultBeam || o.SimEpsilon != DefaultSimEpsilon {
		t.Errorf("defaults = %+v", o)
	}
}

func TestExactMatchLengthMismatch(t *testing.T) {
	m := fixtureModel(t)
	q := Query{Events: []videomodel.Event{videomodel.EventGoal, videomodel.EventGoal}}
	if ExactMatch(m, Match{States: []int{3}}, q) {
		t.Error("length mismatch accepted")
	}
}

func BenchmarkRetrieveGreedySmall(b *testing.B) {
	m := fixtureModel(b)
	e, _ := NewEngine(m, Options{AnnotatedOnly: true})
	q := Query{Events: []videomodel.Event{videomodel.EventGoal, videomodel.EventFreeKick}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Retrieve(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConjunctionStepQuery(t *testing.T) {
	m := fixtureModel(t)
	// First step requires a shot annotated with BOTH free kick and goal
	// (the paper's Section-3 example opening), then a corner kick. Only
	// v0 state 1 -> state 2 satisfies it.
	q := Query{Steps: []Step{
		{Events: []videomodel.Event{videomodel.EventFreeKick, videomodel.EventGoal}},
		{Events: []videomodel.Event{videomodel.EventCornerKick}},
	}}
	e, err := NewEngine(m, Options{AnnotatedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("conjunction query found %d matches, want 1", len(res.Matches))
	}
	if got := res.Matches[0].States; got[0] != 1 || got[1] != 2 {
		t.Errorf("match states = %v, want [1 2]", got)
	}
	if !ExactMatch(m, res.Matches[0], q) {
		t.Error("conjunction match not exact")
	}
}

func TestQueryStepValidation(t *testing.T) {
	if err := (Query{Steps: []Step{{}}}).Validate(); err == nil {
		t.Error("empty step accepted")
	}
	q := NewQuery(videomodel.EventGoal)
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

func TestGapConstraintsFilterCandidates(t *testing.T) {
	m := fixtureModel(t)
	// v1 states: goal@0ms(3), free_kick@1000ms(4), goal@2000ms(5).
	// goal ->[<1.5s] free_kick matches 3->4 (gap 1000ms).
	tight := Query{Steps: []Step{
		{Events: []videomodel.Event{videomodel.EventGoal}},
		{Events: []videomodel.Event{videomodel.EventFreeKick}, MaxGapMS: 1500},
	}}
	e, err := NewEngine(m, Options{AnnotatedOnly: true, Beam: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Retrieve(tight)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].States[0] != 3 {
		t.Fatalf("tight gap query matches = %+v, want only [3 4]", res.Matches)
	}

	// With MinGapMS above the actual gap nothing matches.
	impossible := Query{Steps: []Step{
		{Events: []videomodel.Event{videomodel.EventGoal}},
		{Events: []videomodel.Event{videomodel.EventFreeKick}, MinGapMS: 5000},
	}}
	res, err = e.Retrieve(impossible)
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range res.Matches {
		if ExactMatch(m, match, impossible) {
			t.Errorf("impossible gap query returned exact match %v", match.States)
		}
	}
}

func TestGapConstraintValidation(t *testing.T) {
	bad := []Query{
		{Steps: []Step{{Events: []videomodel.Event{videomodel.EventGoal}, MaxGapMS: 10}}},                                                                 // gap on first step
		{Steps: []Step{{Events: []videomodel.Event{videomodel.EventGoal}}, {Events: []videomodel.Event{videomodel.EventFoul}, MinGapMS: -1}}},             // negative
		{Steps: []Step{{Events: []videomodel.Event{videomodel.EventGoal}}, {Events: []videomodel.Event{videomodel.EventFoul}, MinGapMS: 9, MaxGapMS: 3}}}, // inverted
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: invalid gap query accepted", i)
		}
	}
}

func TestGapBlocksCrossVideoHop(t *testing.T) {
	m := fixtureModel(t)
	// corner_kick -> foul exists only across videos; a MaxGap forbids the
	// hop, so no exact match may be returned.
	q := Query{Steps: []Step{
		{Events: []videomodel.Event{videomodel.EventCornerKick}},
		{Events: []videomodel.Event{videomodel.EventFoul}, MaxGapMS: 60000},
	}}
	e, err := NewEngine(m, Options{AnnotatedOnly: true, CrossVideo: true, Beam: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range res.Matches {
		if ExactMatch(m, match, q) {
			t.Errorf("gap-constrained query crossed videos: %v", match.States)
		}
	}
}

func TestGroundTruthCountWithGaps(t *testing.T) {
	m := fixtureModel(t)
	free := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	unconstrained := GroundTruthCount(m, free)
	q := Query{Steps: []Step{
		{Events: []videomodel.Event{videomodel.EventGoal}},
		{Events: []videomodel.Event{videomodel.EventFreeKick}, MaxGapMS: 1500},
	}}
	constrained := GroundTruthCount(m, q)
	if constrained > unconstrained {
		t.Errorf("constrained count %d exceeds unconstrained %d", constrained, unconstrained)
	}
	if constrained != 1 {
		t.Errorf("constrained count = %d, want 1", constrained)
	}
	bf, err := BruteForce(m, q, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Matches) != constrained {
		t.Errorf("brute force found %d, ground truth %d", len(bf.Matches), constrained)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	m := fixtureModel(t)
	q := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	serial, err := NewEngine(m, Options{AnnotatedOnly: true, Beam: 4, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewEngine(m, Options{AnnotatedOnly: true, Beam: 4, TopK: 10, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := serial.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Matches) != len(rp.Matches) {
		t.Fatalf("serial %d matches, parallel %d", len(rs.Matches), len(rp.Matches))
	}
	for i := range rs.Matches {
		if rs.Matches[i].Score != rp.Matches[i].Score {
			t.Fatalf("match %d scores differ: %v vs %v", i, rs.Matches[i].Score, rp.Matches[i].Score)
		}
		for j := range rs.Matches[i].States {
			if rs.Matches[i].States[j] != rp.Matches[i].States[j] {
				t.Fatalf("match %d states differ", i)
			}
		}
	}
	if rs.Cost.SimEvals != rp.Cost.SimEvals {
		t.Errorf("cost counters differ: %d vs %d", rs.Cost.SimEvals, rp.Cost.SimEvals)
	}
}

func TestScopeRestrictsToVideo(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{AnnotatedOnly: true, Beam: 8})
	q := Query{
		Events: []videomodel.Event{videomodel.EventGoal},
		Scope:  &Scope{Video: 2}, // only v1 (VideoID 2)
	}
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("scoped query found nothing in its video")
	}
	for _, match := range res.Matches {
		for _, vid := range match.Videos {
			if vid != 2 {
				t.Errorf("scoped match escaped to video %d", vid)
			}
		}
	}
	// Unscoped returns more goal matches (v0 has one too).
	free, err := e.Retrieve(NewQuery(videomodel.EventGoal))
	if err != nil {
		t.Fatal(err)
	}
	if len(free.Matches) <= len(res.Matches) {
		t.Errorf("unscoped %d matches should exceed scoped %d", len(free.Matches), len(res.Matches))
	}
}

func TestScopeTimeWindow(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{AnnotatedOnly: true, Beam: 8})
	// v1 goals start at 0ms (state 3) and 2000ms (state 5): a window
	// [1500, 99999) admits only the later one.
	q := Query{
		Events: []videomodel.Event{videomodel.EventGoal},
		Scope:  &Scope{Video: 2, FromMS: 1500, ToMS: 99999},
	}
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].States[0] != 5 {
		t.Errorf("windowed matches = %+v, want only state 5", res.Matches)
	}
}

func TestScopeDisablesCrossVideoHop(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{AnnotatedOnly: true, CrossVideo: true, Beam: 8})
	// corner -> foul only exists across videos; with a video scope the
	// hop is forbidden, so no exact match may appear.
	q := Query{
		Events: []videomodel.Event{videomodel.EventCornerKick, videomodel.EventFoul},
		Scope:  &Scope{Video: 1},
	}
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range res.Matches {
		if ExactMatch(m, match, q) {
			t.Errorf("scoped query hopped videos: %v", match.Videos)
		}
	}
}

func TestScopeValidation(t *testing.T) {
	bad := []Query{
		{Events: []videomodel.Event{videomodel.EventGoal}, Scope: &Scope{FromMS: -1}},
		{Events: []videomodel.Event{videomodel.EventGoal}, Scope: &Scope{FromMS: 10, ToMS: 5}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: bad scope accepted", i)
		}
	}
}

func TestBruteForceHonorsScope(t *testing.T) {
	m := fixtureModel(t)
	q := Query{
		Events: []videomodel.Event{videomodel.EventGoal},
		Scope:  &Scope{Video: 2},
	}
	res, err := BruteForce(m, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range res.Matches {
		if match.Videos[0] != 2 {
			t.Errorf("brute force escaped scope: %v", match.Videos)
		}
	}
	if len(res.Matches) != 2 {
		t.Errorf("scoped brute force = %d matches, want v1's 2 goals", len(res.Matches))
	}
}

func TestRetrievalInvariantsProperty(t *testing.T) {
	// Property over random corpora and queries: results are sorted, carry
	// no duplicate state sequences, respect TopK, have positive-length
	// step lists matching the query, and monotone same-video steps.
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		corpusCfg := dataset.Config{
			Seed:      seed,
			Videos:    2 + rng.Intn(4),
			Shots:     60 + rng.Intn(80),
			Annotated: 12 + rng.Intn(20),
			Fast:      true,
		}
		if corpusCfg.Annotated < corpusCfg.Videos {
			corpusCfg.Annotated = corpusCfg.Videos
		}
		corpus, err := dataset.Build(corpusCfg)
		if err != nil {
			return false
		}
		m, err := hmmm.Build(corpus.Archive, corpus.Features, hmmm.BuildOptions{})
		if err != nil {
			return false
		}
		e, err := NewEngine(m, Options{
			AnnotatedOnly: rng.Bool(0.5),
			CrossVideo:    rng.Bool(0.5),
			Beam:          1 + rng.Intn(6),
			TopK:          1 + rng.Intn(8),
		})
		if err != nil {
			return false
		}
		events := videomodel.AllEvents()
		var qe []videomodel.Event
		for i := 0; i < 1+rng.Intn(3); i++ {
			qe = append(qe, events[rng.Intn(len(events))])
		}
		res, err := e.Retrieve(NewQuery(qe...))
		if err != nil {
			return false
		}
		if len(res.Matches) > 1+rng.Intn(8)+8 { // TopK upper bound is 8
			return false
		}
		seen := map[string]bool{}
		for i, match := range res.Matches {
			if len(match.States) != len(qe) {
				return false
			}
			if i > 0 && match.Score > res.Matches[i-1].Score {
				return false
			}
			k := fmt.Sprint(match.States)
			for j := 1; j < len(match.States); j++ {
				if match.Videos[j] == match.Videos[j-1] && match.States[j] <= match.States[j-1] {
					return false
				}
			}
			_ = seen[k] // per-video duplicates are legal pre-merge; just exercise the key
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

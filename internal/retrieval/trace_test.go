package retrieval

import (
	"bytes"
	"strings"
	"testing"

	"github.com/videodb/hmmm/internal/videomodel"
)

func TestTracerCollectsExecution(t *testing.T) {
	m := fixtureModel(t)
	tracer := &CollectTracer{}
	e, err := NewEngine(m, Options{AnnotatedOnly: true, Beam: 4, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Retrieve(NewQuery(videomodel.EventGoal, videomodel.EventFreeKick))
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Count(TraceVideoEnter) != res.Cost.VideosSeen {
		t.Errorf("video-enter events = %d, videos seen = %d", tracer.Count(TraceVideoEnter), res.Cost.VideosSeen)
	}
	if tracer.Count(TraceComplete) != len(res.Matches) {
		t.Errorf("complete events = %d, matches = %d", tracer.Count(TraceComplete), len(res.Matches))
	}
	if tracer.Count(TraceStage) == 0 {
		t.Error("no stage events")
	}
	// v0's goal at its last state cannot continue: some dead end occurs.
	if tracer.Count(TraceDeadEnd) == 0 {
		t.Error("no dead-end events despite non-continuable candidates")
	}
}

func TestTracerHopEvents(t *testing.T) {
	m := fixtureModel(t)
	tracer := &CollectTracer{}
	e, err := NewEngine(m, Options{AnnotatedOnly: true, CrossVideo: true, Beam: 4, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Retrieve(NewQuery(videomodel.EventCornerKick, videomodel.EventFoul)); err != nil {
		t.Fatal(err)
	}
	if tracer.Count(TraceHop) == 0 {
		t.Error("cross-video query produced no hop events")
	}
}

func TestTracerParallelMatchesSerialCounts(t *testing.T) {
	m := fixtureModel(t)
	q := NewQuery(videomodel.EventGoal)
	serial := &CollectTracer{}
	es, _ := NewEngine(m, Options{AnnotatedOnly: true, Beam: 4, Tracer: serial})
	if _, err := es.Retrieve(q); err != nil {
		t.Fatal(err)
	}
	par := &CollectTracer{}
	ep, _ := NewEngine(m, Options{AnnotatedOnly: true, Beam: 4, Parallel: 4, Tracer: par})
	if _, err := ep.Retrieve(q); err != nil {
		t.Fatal(err)
	}
	for _, k := range []TraceKind{TraceVideoEnter, TraceComplete, TraceStage} {
		if serial.Count(k) != par.Count(k) {
			t.Errorf("%v: serial %d vs parallel %d", k, serial.Count(k), par.Count(k))
		}
	}
}

func TestWriterTracerRendering(t *testing.T) {
	var buf bytes.Buffer
	w := &WriterTracer{W: &buf}
	w.Event(TraceEvent{Kind: TraceVideoEnter, Video: 3, N: 0})
	w.Event(TraceEvent{Kind: TraceStage, Video: 3, Stage: 1, N: 2})
	w.Event(TraceEvent{Kind: TraceHop, Video: 5, Stage: 1})
	w.Event(TraceEvent{Kind: TraceComplete, State: 7, Value: 0.5})
	w.Event(TraceEvent{Kind: TraceDeadEnd, Video: 3, Stage: 2})
	out := buf.String()
	for _, want := range []string{"enter video 3", "stage 1: 2 cells", "hop -> video 5", "state 7 score 0.50000", "dead end"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceVideoEnter.String() != "video-enter" || TraceKind(99).String() != "trace(99)" {
		t.Error("TraceKind rendering wrong")
	}
}

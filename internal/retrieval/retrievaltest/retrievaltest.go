// Package retrievaltest provides the shared differential-testing
// harness for retrieval correctness: a seeded-random small-model
// generator, a deterministic query corpus, the exhaustive brute-force
// oracle (re-exported from retrieval.BruteForce), and bit-identical
// result comparators.
//
// Both the retrieval suite and the shard scatter-gather suite assert
// against the same oracle through this package, so the two pipelines
// are pinned to one ground truth.
//
// Two comparison strengths are offered, matching what the engine
// actually guarantees:
//
//   - RequireSameMatches: full bit-identity (states, shots, videos,
//     weights, scores, order). Holds between any two exact pipelines —
//     e.g. shard.Group vs the single engine for any shard count — and
//     between the engine and the oracle on single-step queries with
//     Beam >= TopK (no path can collide, no per-video beam truncation
//     below the global K).
//   - RequireOracleConsistent: the oracle's exhaustive ranking,
//     restricted to the sequences the engine materialized, must equal
//     the engine's ranking bit for bit. On multi-step queries the
//     engine's Viterbi relaxation keeps one best-weight path per
//     (stage, state), so its result is a subset of the oracle's
//     enumeration; this check still verifies every returned score,
//     weight vector, and the relative order through the oracle's
//     independent scoring path.
package retrievaltest

import (
	"slices"
	"strconv"
	"testing"

	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/videomodel"
	"github.com/videodb/hmmm/internal/xrand"
)

// Config sizes a seeded-random model. The zero value of every field is
// replaced with a small default, so Config{Seed: n} alone is valid.
type Config struct {
	Seed       uint64
	Videos     int     // number of videos (default 4)
	MaxShots   int     // max shots per video, >= 1 (default 12)
	Events     int     // distinct event concepts drawn (default 3)
	FeatureDim int     // feature vector length (default 4)
	Annotate   float64 // per-shot annotation probability (default 0.7)
	LearnP12   bool    // apply the Eqs. 8-10 feature-importance learning
	// Domain selects the event vocabulary the model is built over (nil =
	// soccer). Events is clamped to the domain's vocabulary size, and the
	// built model carries the domain's stamp — so every differential gate
	// in the tree can be re-run per domain by varying only this field.
	Domain *videomodel.Domain
}

func (c Config) withDefaults() Config {
	if c.Domain == nil {
		c.Domain = videomodel.Soccer()
	}
	if c.Videos <= 0 {
		c.Videos = 4
	}
	if c.MaxShots <= 0 {
		c.MaxShots = 12
	}
	if c.Events <= 0 {
		c.Events = 3
	}
	if c.Events > c.Domain.NumEvents() {
		c.Events = c.Domain.NumEvents()
	}
	if c.FeatureDim <= 0 {
		c.FeatureDim = 4
	}
	if c.Annotate <= 0 {
		c.Annotate = 0.7
	}
	return c
}

// RandomModel builds a deterministic pseudo-random model: cfg.Videos
// videos of up to cfg.MaxShots shots, each shot annotated with
// probability cfg.Annotate by one or two of the first cfg.Events
// concepts, with random feature vectors. The same Config always yields
// the same model. Videos may end up with no annotated shots (empty
// local MMMs), which is exactly the irregularity the differential
// suites want to cover.
func RandomModel(tb testing.TB, cfg Config) *hmmm.Model {
	tb.Helper()
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed*2654435761 + 1)
	events := cfg.Domain.AllEvents()[:cfg.Events]

	feats := make(map[videomodel.ShotID][]float64)
	videos := make([]*videomodel.Video, cfg.Videos)
	sid := videomodel.ShotID(0)
	annotatedTotal := 0
	for vi := range videos {
		v := &videomodel.Video{ID: videomodel.VideoID(vi + 1)}
		nShots := 1 + rng.Intn(cfg.MaxShots)
		t := 0
		for i := 0; i < nShots; i++ {
			dur := 500 + rng.Intn(4500)
			s := &videomodel.Shot{
				ID: sid, Video: v.ID, Index: i,
				StartMS: t, EndMS: t + dur,
			}
			sid++
			t += dur
			if rng.Float64() < cfg.Annotate {
				s.Events = append(s.Events, events[rng.Intn(len(events))])
				if rng.Bool(0.3) {
					alt := events[rng.Intn(len(events))]
					if !s.HasEvent(alt) {
						s.Events = append(s.Events, alt)
					}
				}
				annotatedTotal++
			}
			v.Shots = append(v.Shots, s)
		}
		videos[vi] = v
	}
	if annotatedTotal == 0 {
		// hmmm.Build requires at least one annotated shot.
		videos[0].Shots[0].Events = []videomodel.Event{events[0]}
	}
	for _, v := range videos {
		for _, s := range v.Shots {
			if s.Annotated() {
				f := make([]float64, cfg.FeatureDim)
				for i := range f {
					f[i] = rng.Float64()
				}
				feats[s.ID] = f
			}
		}
	}

	a, err := videomodel.NewArchive(videos)
	if err != nil {
		tb.Fatalf("retrievaltest: archive: %v", err)
	}
	m, err := hmmm.Build(a, feats, hmmm.BuildOptions{LearnP12: cfg.LearnP12, Domain: cfg.Domain})
	if err != nil {
		tb.Fatalf("retrievaltest: build: %v", err)
	}
	return m
}

// Domains returns the built-in domain specs in deterministic order: the
// axis the cross-domain differential suites iterate over. Soccer comes
// first so a suite's first subtest reproduces the historical
// single-domain behavior exactly.
func Domains() []*videomodel.Domain {
	return []*videomodel.Domain{videomodel.Soccer(), videomodel.Basketball(), videomodel.News()}
}

// Queries returns a deterministic query corpus for m covering the
// shapes retrieval distinguishes: single-step, multi-step, conjunction-
// free alternating steps, gap-constrained steps, and a video-scoped
// query. Only events that actually annotate a state appear, so every
// query has a non-empty candidate space somewhere.
func Queries(m *hmmm.Model) []retrieval.Query {
	present := PresentEvents(m)
	if len(present) == 0 {
		return nil
	}
	e0 := present[0]
	e1 := present[len(present)-1]
	qs := []retrieval.Query{
		{Events: []videomodel.Event{e0}},
		{Events: []videomodel.Event{e1}},
		{Events: []videomodel.Event{e0, e1}},
		{Events: []videomodel.Event{e0, e1, e0}},
		{Steps: []retrieval.Step{
			{Events: []videomodel.Event{e0}},
			{Events: []videomodel.Event{e1}, MaxGapMS: 30000},
		}},
		{
			Events: []videomodel.Event{e0},
			Scope:  &retrieval.Scope{Video: m.VideoIDs[0]},
		},
	}
	return qs
}

// PresentEvents lists the events of m's domain that annotate at least
// one state, in vocabulary order.
func PresentEvents(m *hmmm.Model) []videomodel.Event {
	d, ok := videomodel.DomainByName(m.Domain)
	if !ok {
		d = videomodel.Soccer()
	}
	var present []videomodel.Event
	for _, e := range d.AllEvents() {
		for i := range m.States {
			if m.States[i].HasEvent(e) {
				present = append(present, e)
				break
			}
		}
	}
	return present
}

// NegationQueries returns a deterministic corpus of negated-step
// queries over m's present events: single-step pure exclusion, a
// negated conjunction, negation on the first and on a later step of a
// multi-step pattern, and a gap-constrained negated step. Every query
// keeps at least one positive event per step (the grammar's rule), so
// the corpus is valid for every pipeline and for the brute-force
// oracle.
func NegationQueries(m *hmmm.Model) []retrieval.Query {
	present := PresentEvents(m)
	if len(present) < 2 {
		return nil
	}
	e0 := present[0]
	e1 := present[1]
	e2 := present[len(present)-1] // may equal e1 on 2-event models; still valid
	qs := []retrieval.Query{
		{Steps: []retrieval.Step{
			{Events: []videomodel.Event{e0}, Not: []videomodel.Event{e1}},
		}},
		{Steps: []retrieval.Step{
			{Events: []videomodel.Event{e1}, Not: []videomodel.Event{e0}},
		}},
		{Steps: []retrieval.Step{
			{Events: []videomodel.Event{e0}, Not: []videomodel.Event{e1}},
			{Events: []videomodel.Event{e1}},
		}},
		{Steps: []retrieval.Step{
			{Events: []videomodel.Event{e0}},
			{Events: []videomodel.Event{e1}, Not: []videomodel.Event{e0}},
		}},
		{Steps: []retrieval.Step{
			{Events: []videomodel.Event{e0}, Not: []videomodel.Event{e1}},
			{Events: []videomodel.Event{e2}, Not: []videomodel.Event{e0}, MaxGapMS: 30000},
		}},
	}
	if e2 != e0 && e2 != e1 {
		qs = append(qs, retrieval.Query{Steps: []retrieval.Step{
			{Events: []videomodel.Event{e0}, Not: []videomodel.Event{e1, e2}},
		}})
	}
	return qs
}

// SingleStep reports whether q has exactly one step — the shape for
// which the engine (with Beam >= TopK) is provably exhaustive and
// RequireSameMatches against the oracle applies.
func SingleStep(q retrieval.Query) bool { return q.Len() == 1 }

// Oracle runs the exhaustive brute-force enumerator (the Eqs. 12-15
// scorer over every annotation-consistent sequence) and returns its
// ranking truncated to topK. It is the ground truth for AnnotatedOnly
// retrieval without cross-video hops.
func Oracle(tb testing.TB, m *hmmm.Model, q retrieval.Query, topK int) *retrieval.Result {
	tb.Helper()
	res, err := retrieval.BruteForce(m, q, topK)
	if err != nil {
		tb.Fatalf("retrievaltest: oracle: %v", err)
	}
	return res
}

// OracleLimit is a topK large enough that the oracle never truncates on
// the models this package generates: comparisons that restrict the
// oracle list to the engine's sequences need the full enumeration.
const OracleLimit = 1 << 20

// RequireSameMatches asserts two rankings are bit-identical: same
// length, and per rank the same states, shots, videos, weights, and
// score — no tolerance anywhere.
func RequireSameMatches(tb testing.TB, label string, want, got []retrieval.Match) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		requireSameMatch(tb, label, i, want[i], got[i])
	}
}

func requireSameMatch(tb testing.TB, label string, rank int, want, got retrieval.Match) {
	tb.Helper()
	if !slices.Equal(want.States, got.States) {
		tb.Fatalf("%s: rank %d states = %v, want %v", label, rank, got.States, want.States)
	}
	if !slices.Equal(want.Shots, got.Shots) {
		tb.Fatalf("%s: rank %d shots = %v, want %v", label, rank, got.Shots, want.Shots)
	}
	if !slices.Equal(want.Videos, got.Videos) {
		tb.Fatalf("%s: rank %d videos = %v, want %v", label, rank, got.Videos, want.Videos)
	}
	if !slices.Equal(want.Weights, got.Weights) {
		tb.Fatalf("%s: rank %d weights = %v, want %v (bitwise)", label, rank, got.Weights, want.Weights)
	}
	if want.Score != got.Score {
		tb.Fatalf("%s: rank %d score = %v, want %v (bitwise)", label, rank, got.Score, want.Score)
	}
}

// RequireOracleConsistent asserts that got is the oracle's ranking
// restricted to got's own state sequences: every returned sequence
// appears in the oracle's full enumeration with a bit-identical score
// and weight vector, and the oracle's independent sort puts the shared
// sequences in exactly got's order. oracle must be computed with
// OracleLimit so nothing got returned was truncated away.
func RequireOracleConsistent(tb testing.TB, label string, oracle *retrieval.Result, got []retrieval.Match) {
	tb.Helper()
	keep := make(map[string]bool, len(got))
	for _, m := range got {
		keep[key(m.States)] = true
	}
	var filtered []retrieval.Match
	for _, m := range oracle.Matches {
		if keep[key(m.States)] {
			filtered = append(filtered, m)
		}
	}
	if len(filtered) != len(got) {
		tb.Fatalf("%s: oracle contains %d of the %d returned sequences", label, len(filtered), len(got))
	}
	for i := range got {
		requireSameMatch(tb, label+" (oracle order)", i, filtered[i], got[i])
	}
}

func key(states []int) string {
	b := make([]byte, 0, len(states)*3)
	for _, s := range states {
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
	}
	return string(b)
}

// RecallAtK returns the fraction of want's top-k state sequences that
// appear anywhere in got's top-k: the quality gate for approximate
// (coarse→fine) retrieval against the exact ranking. An empty want
// top-k counts as perfect recall (there was nothing to miss).
func RecallAtK(want, got []retrieval.Match, k int) float64 {
	if k < len(want) {
		want = want[:k]
	}
	if k < len(got) {
		got = got[:k]
	}
	if len(want) == 0 {
		return 1
	}
	have := make(map[string]bool, len(got))
	for _, m := range got {
		have[key(m.States)] = true
	}
	hits := 0
	for _, m := range want {
		if have[key(m.States)] {
			hits++
		}
	}
	return float64(hits) / float64(len(want))
}

// RecallStats aggregates RecallAtK over a query corpus: Hits/Wanted is
// the corpus-level recall (micro-average), Min the worst single query.
type RecallStats struct {
	Hits, Wanted int
	Min          float64
	Queries      int
}

// Observe folds one query's exact-vs-approximate top-k pair into the
// stats.
func (rs *RecallStats) Observe(want, got []retrieval.Match, k int) {
	if k < len(want) {
		want = want[:k]
	}
	r := RecallAtK(want, got, k)
	rs.Hits += int(r*float64(len(want)) + 0.5)
	rs.Wanted += len(want)
	if rs.Queries == 0 || r < rs.Min {
		rs.Min = r
	}
	rs.Queries++
}

// Recall returns the corpus-level recall; 1 when nothing was wanted.
func (rs *RecallStats) Recall() float64 {
	if rs.Wanted == 0 {
		return 1
	}
	return float64(rs.Hits) / float64(rs.Wanted)
}

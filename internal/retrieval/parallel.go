package retrieval

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
)

// estimateParallelWork approximates the edge evaluations a retrieval
// over the given entry videos will perform: per video, each step
// contributes its candidate count — the length of the shortest posting
// list among the step's events, or the video's whole local state count
// when the similarity fallback would scan it (no annotated candidates
// and !AnnotatedOnly) — and the sum is scaled by the beam width, since
// each surviving cell rescans the next stage's candidates. The estimate
// reads only the engine's immutable index, so it is deterministic for a
// given model and query.
func (e *Engine) estimateParallelWork(order []int, steps []Step) int {
	work := 0
	for _, vi := range order {
		work += e.estimateVideoWork(vi, steps)
	}
	return work
}

// estimateVideoWork is the per-video term of the work estimate: the sum
// over steps of the candidate count each stage would scan, scaled by the
// beam width.
func (e *Engine) estimateVideoWork(vi int, steps []Step) int {
	lo, hi := e.m.VideoStates(vi)
	nLocal := hi - lo
	perVideo := 0
	for _, st := range steps {
		cand := nLocal
		if len(st.Events) > 0 {
			n := len(e.shared.index[vi][st.Events[0].Index()])
			for _, ev := range st.Events[1:] {
				if alt := len(e.shared.index[vi][ev.Index()]); alt < n {
					n = alt
				}
			}
			if n > 0 || e.opts.AnnotatedOnly {
				cand = n
			}
		}
		perVideo += cand
	}
	return perVideo * e.opts.Beam
}

// EstimateCost approximates the lattice edge evaluations q would perform
// — the same posting-length × steps × beam estimate the parallel fan-out
// heuristic uses, summed over the videos the query's scope admits. It
// reads only the engine's immutable index, so it is deterministic for a
// given model and query and costs a few index-length lookups per video —
// cheap enough to run on every request. The server's admission lanes use
// it to split traffic into cheap (fast-lane) and heavy (queued) classes
// before committing any search work. An invalid query estimates to 0: it
// will be rejected by Retrieve before doing work anyway.
func (e *Engine) EstimateCost(q Query) int {
	steps := q.steps()
	if len(steps) == 0 {
		return 0
	}
	if q.Scope != nil && q.Scope.Video != 0 {
		for vi, vid := range e.m.VideoIDs {
			if vid == q.Scope.Video {
				return e.estimateVideoWork(vi, steps)
			}
		}
		return 0
	}
	work := 0
	for vi := 0; vi < len(e.m.VideoIDs); vi++ {
		work += e.estimateVideoWork(vi, steps)
	}
	return work
}

// effectiveParallel resolves the worker count for one query: the
// Options.Parallel ceiling, lowered so each worker gets at least
// MinParallelWork estimated edge evaluations, and falling back to the
// serial loop (1) when the whole query is too small to amortize
// goroutine spawn and ordered-commit overhead. The decision depends
// only on the model and query — never on timing — and the serial and
// parallel paths are bit-identical, so results are unaffected either
// way.
func (e *Engine) effectiveParallel(order []int, steps []Step) int {
	workers := e.opts.Parallel
	if workers <= 1 {
		return 1
	}
	if workers > len(order) {
		workers = len(order)
	}
	minWork := e.opts.MinParallelWork
	if minWork < 0 {
		return workers // heuristic disabled: always fan out
	}
	if minWork == 0 {
		minWork = DefaultMinParallelWork
	}
	if byWork := e.estimateParallelWork(order, steps) / minWork; byWork < workers {
		workers = byWork
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// retrieveParallel fans the per-video lattice searches out over the
// given worker count as an ordered pipeline: workers pull entry
// videos from the Π2/A2 affinity order, and finished results are
// committed strictly in that order. Commit-order determinism is what
// makes the combined result — matches, scores, and cost counters —
// bit-identical to a serial run.
//
// StopAfterMatches composes with the pipeline: the raw-match threshold is
// evaluated on the committed in-order prefix exactly as the serial loop
// evaluates it, so the same videos contribute and the same early-stop
// point is reached. Videos searched speculatively past that point are
// cancelled (workers check the flag between lattice stages) and their
// results discarded without touching matches or cost.
//
// Workers prune with a racy snapshot of the accumulator's admission
// threshold. The threshold only ever rises, so a stale snapshot admits a
// superset; the commit step re-filters against the authoritative
// accumulator, preserving exact serial semantics.
// Request-context cancellation composes too: workers poll ctx inside the
// lattice (searchCtx.tick) and before pulling the next video, so an
// expired deadline or a vanished client stops the fan-out within a
// bounded amount of work; whatever the commit frontier had accepted by
// then is returned as the truncated partial result.
func (e *Engine) retrieveParallel(ctx context.Context, workers int, order []int, q Query, steps []Step, res *Result, acc *topAccum) {
	type videoResult struct {
		matches []Match
		raw     int
		cost    Cost
		done    bool
	}
	stopAt := 0
	if e.opts.StopAfterMatches {
		stopAt = 3 * e.opts.TopK
	}
	var (
		mu        sync.Mutex
		results   = make([]videoResult, len(order))
		nextIdx   int
		committed int
		stopped   bool
		cancel    atomic.Bool
		hintBits  atomic.Uint64 // Float64bits of the last published threshold
		hintOn    atomic.Bool
	)
	// commitLocked advances the in-order commit frontier over finished
	// results. Caller holds mu.
	commitLocked := func() {
		for !stopped && committed < len(results) && results[committed].done {
			vr := &results[committed]
			res.Cost.add(vr.cost)
			for _, m := range vr.matches {
				if acc.admit(m.Score) {
					acc.add(m)
				}
			}
			acc.raw += vr.raw
			vr.matches = nil
			committed++
			if stopAt > 0 && acc.raw >= stopAt {
				stopped = true
				cancel.Store(true)
				e.emit(TraceEvent{Kind: TraceEarlyStop, N: acc.raw})
			}
		}
		if acc.pruning {
			hintBits.Store(math.Float64bits(acc.thresh))
			hintOn.Store(true)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := e.getArena()
			defer e.putArena(ar)
			sctx := &searchCtx{
				steps:  steps,
				scope:  q.Scope,
				ar:     ar,
				cancel: &cancel,
				ctx:    ctx,
				admit: func(score float64) bool {
					return !hintOn.Load() || score >= math.Float64frombits(hintBits.Load())
				},
			}
			for {
				if sctx.expired() {
					return
				}
				mu.Lock()
				if stopped || nextIdx >= len(order) {
					mu.Unlock()
					return
				}
				oi := nextIdx
				nextIdx++
				mu.Unlock()

				vi := order[oi]
				var c Cost
				c.VideosSeen = 1
				sctx.cost = &c
				e.emit(TraceEvent{Kind: TraceVideoEnter, Video: vi, N: oi})
				ar.beginVideo()
				matches, raw := e.searchVideo(vi, sctx)

				mu.Lock()
				results[oi] = videoResult{matches: matches, raw: raw, cost: c, done: true}
				commitLocked()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

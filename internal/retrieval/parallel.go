package retrieval

import (
	"math"
	"sync"
	"sync/atomic"
)

// retrieveParallel fans the per-video lattice searches out over
// Options.Parallel workers as an ordered pipeline: workers pull entry
// videos from the Π2/A2 affinity order, and finished results are
// committed strictly in that order. Commit-order determinism is what
// makes the combined result — matches, scores, and cost counters —
// bit-identical to a serial run.
//
// StopAfterMatches composes with the pipeline: the raw-match threshold is
// evaluated on the committed in-order prefix exactly as the serial loop
// evaluates it, so the same videos contribute and the same early-stop
// point is reached. Videos searched speculatively past that point are
// cancelled (workers check the flag between lattice stages) and their
// results discarded without touching matches or cost.
//
// Workers prune with a racy snapshot of the accumulator's admission
// threshold. The threshold only ever rises, so a stale snapshot admits a
// superset; the commit step re-filters against the authoritative
// accumulator, preserving exact serial semantics.
func (e *Engine) retrieveParallel(order []int, q Query, steps []Step, res *Result, acc *topAccum) {
	type videoResult struct {
		matches []Match
		raw     int
		cost    Cost
		done    bool
	}
	stopAt := 0
	if e.opts.StopAfterMatches {
		stopAt = 3 * e.opts.TopK
	}
	workers := e.opts.Parallel
	if workers > len(order) {
		workers = len(order)
	}
	var (
		mu        sync.Mutex
		results   = make([]videoResult, len(order))
		nextIdx   int
		committed int
		stopped   bool
		cancel    atomic.Bool
		hintBits  atomic.Uint64 // Float64bits of the last published threshold
		hintOn    atomic.Bool
	)
	// commitLocked advances the in-order commit frontier over finished
	// results. Caller holds mu.
	commitLocked := func() {
		for !stopped && committed < len(results) && results[committed].done {
			vr := &results[committed]
			res.Cost.add(vr.cost)
			for _, m := range vr.matches {
				if acc.admit(m.Score) {
					acc.add(m)
				}
			}
			acc.raw += vr.raw
			vr.matches = nil
			committed++
			if stopAt > 0 && acc.raw >= stopAt {
				stopped = true
				cancel.Store(true)
				e.emit(TraceEvent{Kind: TraceEarlyStop, N: acc.raw})
			}
		}
		if acc.pruning {
			hintBits.Store(math.Float64bits(acc.thresh))
			hintOn.Store(true)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := e.getArena()
			defer e.putArena(ar)
			ctx := &searchCtx{
				steps:  steps,
				scope:  q.Scope,
				ar:     ar,
				cancel: &cancel,
				admit: func(score float64) bool {
					return !hintOn.Load() || score >= math.Float64frombits(hintBits.Load())
				},
			}
			for {
				mu.Lock()
				if stopped || nextIdx >= len(order) {
					mu.Unlock()
					return
				}
				oi := nextIdx
				nextIdx++
				mu.Unlock()

				vi := order[oi]
				var c Cost
				c.VideosSeen = 1
				ctx.cost = &c
				e.emit(TraceEvent{Kind: TraceVideoEnter, Video: vi, N: oi})
				ar.beginVideo()
				matches, raw := e.searchVideo(vi, ctx)

				mu.Lock()
				results[oi] = videoResult{matches: matches, raw: raw, cost: c, done: true}
				commitLocked()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

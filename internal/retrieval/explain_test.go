package retrieval

import (
	"math"
	"testing"

	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/mmm"
	"github.com/videodb/hmmm/internal/videomodel"
)

func TestExplainReproducesWeights(t *testing.T) {
	m := fixtureModel(t)
	e, err := NewEngine(m, Options{AnnotatedOnly: true, Beam: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(videomodel.EventGoal, videomodel.EventFreeKick)
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches to explain")
	}
	match := res.Matches[0]
	exps, err := e.Explain(match, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(match.States) {
		t.Fatalf("explanations = %d, want %d", len(exps), len(match.States))
	}
	for j, ex := range exps {
		if math.Abs(ex.Weight-match.Weights[j]) > 1e-12 {
			t.Errorf("step %d explained weight %v != engine weight %v", j, ex.Weight, match.Weights[j])
		}
		if j == 0 {
			if ex.Pi == 0 || ex.Transition != 0 {
				t.Errorf("first step factors wrong: %+v", ex)
			}
		} else if ex.Transition == 0 {
			t.Errorf("step %d missing transition factor", j)
		}
		if len(ex.Features) == 0 {
			t.Errorf("step %d has no feature breakdown", j)
		}
		if len(ex.Features) > ExplainTopFeatures {
			t.Errorf("step %d breakdown too long: %d", j, len(ex.Features))
		}
		// Contributions must be sorted descending.
		for i := 1; i < len(ex.Features); i++ {
			if ex.Features[i].Term > ex.Features[i-1].Term {
				t.Errorf("step %d contributions unsorted", j)
			}
		}
	}
}

func TestExplainCrossVideoStep(t *testing.T) {
	m := fixtureModel(t)
	e, err := NewEngine(m, Options{AnnotatedOnly: true, CrossVideo: true, Beam: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(videomodel.EventCornerKick, videomodel.EventFoul)
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range res.Matches {
		if !ExactMatch(m, match, q) {
			continue
		}
		exps, err := e.Explain(match, q)
		if err != nil {
			t.Fatal(err)
		}
		if !exps[1].CrossVideo {
			t.Errorf("cross-video step not flagged: %+v", exps[1])
		}
		if math.Abs(exps[1].Weight-match.Weights[1]) > 1e-12 {
			t.Errorf("cross-video weight mismatch: %v vs %v", exps[1].Weight, match.Weights[1])
		}
		return
	}
	t.Fatal("no cross-video exact match found")
}

func TestExplainErrors(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{})
	q := NewQuery(videomodel.EventGoal)
	if _, err := e.Explain(Match{States: []int{0, 1}}, q); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := e.Explain(Match{States: []int{999}}, q); err == nil {
		t.Error("out-of-range state accepted")
	}
	if _, err := e.Explain(Match{}, Query{}); err == nil {
		t.Error("empty match accepted")
	}
}

func TestQueryByExampleFindsSimilarShot(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{})
	// Use state 3's own raw-ish vector: reconstruct by inverting is not
	// possible, so probe with a vector that normalizes close to its B1
	// row: the goal-channel heavy vector from the fixture generator.
	probe := []float64{0.9, 0.2, 0.2, 0.2}
	matches, err := e.QueryByExample(probe, videomodel.EventNone, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(matches))
	}
	// The top match must be a goal-annotated state (high f0).
	top := matches[0].States[0]
	if !m.States[top].HasEvent(videomodel.EventGoal) {
		t.Errorf("QBE top match state %d is not a goal shot: %v", top, m.States[top].Events)
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Score > matches[i-1].Score {
			t.Error("QBE matches unsorted")
		}
	}
}

func TestQueryByExampleConceptWeights(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{})
	probe := []float64{0.2, 0.85, 0.2, 0.2} // free-kick channel
	matches, err := e.QueryByExample(probe, videomodel.EventFreeKick, 1)
	if err != nil {
		t.Fatal(err)
	}
	top := matches[0].States[0]
	if !m.States[top].HasEvent(videomodel.EventFreeKick) {
		t.Errorf("concept-weighted QBE top state %d events = %v", top, m.States[top].Events)
	}
}

func TestQueryByExampleErrors(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{})
	if _, err := e.QueryByExample([]float64{1}, videomodel.EventNone, 5); err == nil {
		t.Error("wrong-width example accepted")
	}
}

func TestRankVideos(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{})
	ranks, err := e.RankVideos(NewQuery(videomodel.EventGoal, videomodel.EventFreeKick))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != m.NumVideos() {
		t.Fatalf("ranks = %d, want %d", len(ranks), m.NumVideos())
	}
	// v0 and v1 both contain goal and free_kick; v2 contains neither.
	if ranks[len(ranks)-1].VideoIdx != 2 || ranks[len(ranks)-1].Score != 0 {
		t.Errorf("video without events should rank last with 0: %+v", ranks)
	}
	// v1 has 2 goals + 1 free kick vs v0's 1 goal + 2 free kicks: both
	// positive.
	if ranks[0].Score <= 0 {
		t.Errorf("top video score = %v, want > 0", ranks[0].Score)
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i].Score > ranks[i-1].Score {
			t.Error("ranks unsorted")
		}
	}
	if _, err := e.RankVideos(Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSimilarVideos(t *testing.T) {
	m := fixtureModel(t)
	e, _ := NewEngine(m, Options{})
	// v0 {free_kick x2, goal, corner} vs v1 {goal x2, free_kick} share
	// events; v2 {foul, corner} overlaps v0 only via corner.
	sims, err := e.SimilarVideos(0, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) != 2 {
		t.Fatalf("similar videos = %d, want 2", len(sims))
	}
	if sims[0].VideoIdx != 1 {
		t.Errorf("most similar to v0 = v%d, want v1 (shared goal/free kick profile)", sims[0].VideoIdx)
	}

	if _, err := e.SimilarVideos(99, 0.5, 5); err == nil {
		t.Error("out-of-range video accepted")
	}
	if _, err := e.SimilarVideos(0, 2, 5); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestSimilarVideosUsesA2(t *testing.T) {
	m := fixtureModel(t)
	// Train A2 so v0 co-accesses v2 heavily; with alpha=0 similarity is
	// pure A2 and v2 must win despite dissimilar profiles.
	err := m.TrainVideoLevel([]mmm.AccessPattern{{States: []int{0, 2}, Freq: 10}}, hmmm.DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(m, Options{})
	sims, err := e.SimilarVideos(0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sims[0].VideoIdx != 2 {
		t.Errorf("A2-trained similarity top = v%d, want v2", sims[0].VideoIdx)
	}
}

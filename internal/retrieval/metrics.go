package retrieval

import (
	"time"

	"github.com/videodb/hmmm/internal/obs"
)

// Metrics is the engine's observability bundle: per-query counters and
// stage-latency histograms registered against an obs.Registry. A nil
// *Metrics (the default) records nothing, and recording happens once
// per retrieval from the already-accumulated Cost counters — the lattice
// hot loop itself touches no atomics, so instrumentation overhead is a
// handful of atomic adds and three clock reads per query.
type Metrics struct {
	Queries      *obs.Counter
	QuerySeconds *obs.Histogram
	// SimLookups counts every Eq. 14 evaluation; SimHits the ones served
	// from the precomputed similarity table, SimMisses the ones recomputed
	// from the raw matrix rows (NoSimCache). hits + misses == lookups is a
	// tested invariant.
	SimLookups *obs.Counter
	SimHits    *obs.Counter
	SimMisses  *obs.Counter
	// Edges counts state-transition edge relaxations; Videos the level-2
	// states expanded; Truncated the retrievals cut short by context
	// expiry (deadline or client disconnect).
	Edges     *obs.Counter
	Videos    *obs.Counter
	Truncated *obs.Counter
	// StageSeconds breaks query latency down by pipeline stage: "order"
	// (Step-2 video ordering), "search" (per-video lattice traversal),
	// "rank" (final sort + truncate).
	StageSeconds *obs.HistogramVec
	// Arena free-list traffic: ArenaReuse counts checkouts served from
	// the bounded pool, ArenaAlloc checkouts that had to allocate fresh
	// scratch (pool empty — more overlapping searches than the cap), and
	// ArenaDrop releases discarded because the pool was already full.
	// ArenaInUse is the live checked-out count. A sustained non-zero
	// alloc/drop rate means Options.ScratchArenas is undersized for the
	// offered concurrency.
	ArenaReuse *obs.Counter
	ArenaAlloc *obs.Counter
	ArenaDrop  *obs.Counter
	ArenaInUse *obs.Gauge
}

// NewMetrics registers the retrieval metric catalog on the registry.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Queries: reg.Counter("hmmm_retrieval_queries_total",
			"Retrievals executed (one per compiled linear pattern)."),
		QuerySeconds: reg.Histogram("hmmm_retrieval_query_seconds",
			"End-to-end retrieval latency in seconds.", nil),
		SimLookups: reg.Counter("hmmm_retrieval_sim_lookups_total",
			"Eq. 14 similarity evaluations."),
		SimHits: reg.Counter("hmmm_retrieval_sim_cache_hits_total",
			"Similarity evaluations served from the precomputed table."),
		SimMisses: reg.Counter("hmmm_retrieval_sim_cache_misses_total",
			"Similarity evaluations recomputed from raw matrix rows."),
		Edges: reg.Counter("hmmm_retrieval_edges_total",
			"State-transition edges relaxed during lattice traversal."),
		Videos: reg.Counter("hmmm_retrieval_videos_seen_total",
			"Level-2 video states expanded."),
		Truncated: reg.Counter("hmmm_retrieval_truncated_total",
			"Retrievals truncated by deadline or client disconnect."),
		StageSeconds: reg.HistogramVec("hmmm_retrieval_stage_seconds",
			"Retrieval latency by pipeline stage.", nil, "stage"),
		ArenaReuse: reg.Counter("hmmm_retrieval_arena_reuse_total",
			"Search-arena checkouts served from the bounded free list."),
		ArenaAlloc: reg.Counter("hmmm_retrieval_arena_alloc_total",
			"Search-arena checkouts that allocated fresh scratch (pool empty)."),
		ArenaDrop: reg.Counter("hmmm_retrieval_arena_drop_total",
			"Search-arena releases dropped because the free list was full."),
		ArenaInUse: reg.Gauge("hmmm_retrieval_arena_in_use",
			"Search arenas currently checked out."),
	}
}

// arenaGet records one arena checkout. Safe on a nil receiver (the
// uninstrumented default) — getArena sits outside the per-edge hot loop,
// so the cost is one branch plus at most one atomic per search.
func (m *Metrics) arenaGet(reused bool) {
	if m == nil {
		return
	}
	if reused {
		m.ArenaReuse.Inc()
	} else {
		m.ArenaAlloc.Inc()
	}
	m.ArenaInUse.Add(1)
}

// arenaPut records one arena release.
func (m *Metrics) arenaPut(dropped bool) {
	if m == nil {
		return
	}
	if dropped {
		m.ArenaDrop.Inc()
	}
	m.ArenaInUse.Add(-1)
}

// observe records one finished retrieval. cached reports whether the
// engine's similarity table served the query's Eq. 14 evaluations.
func (m *Metrics) observe(c Cost, cached bool, total, order, search, rank time.Duration) {
	if m == nil {
		return
	}
	m.Queries.Inc()
	m.QuerySeconds.ObserveDuration(total)
	m.SimLookups.Add(uint64(c.SimEvals))
	if cached {
		m.SimHits.Add(uint64(c.SimEvals))
	} else {
		m.SimMisses.Add(uint64(c.SimEvals))
	}
	m.Edges.Add(uint64(c.EdgeEvals))
	m.Videos.Add(uint64(c.VideosSeen))
	if c.Truncated {
		m.Truncated.Inc()
	}
	m.StageSeconds.With("order").ObserveDuration(order)
	m.StageSeconds.With("search").ObserveDuration(search)
	m.StageSeconds.With("rank").ObserveDuration(rank)
}

package retrieval

import (
	"github.com/videodb/hmmm/internal/hmmm"
)

// bfPath is a partial candidate during the baseline's exhaustive DFS. The
// engine's traversal uses arena-backed lattice cells instead; the baseline
// keeps the simple immutable-copy representation because its cost is
// dominated by enumeration, not allocation.
type bfPath struct {
	states  []int
	videos  []int // video index per step
	weights []float64
	w       float64 // current w_j
	score   float64 // running SS
}

func (p *bfPath) extend(state, video int, w float64) *bfPath {
	return &bfPath{
		states:  append(append([]int(nil), p.states...), state),
		videos:  append(append([]int(nil), p.videos...), video),
		weights: append(append([]float64(nil), p.weights...), w),
		w:       w,
		score:   p.score + w,
	}
}

// match materializes the completed path.
func (p *bfPath) match(m *hmmm.Model) Match {
	out := Match{
		States:  p.states,
		Weights: p.weights,
		Score:   p.score,
	}
	for i, s := range p.states {
		out.Shots = append(out.Shots, m.States[s].Shot)
		out.Videos = append(out.Videos, m.VideoIDs[p.videos[i]])
	}
	return out
}

// BruteForce exhaustively enumerates every temporally ordered sequence of
// annotated states matching the query events within each video, scores each
// with the same Eqs. 12-15 the engine uses, and returns the global top-K
// ranking.
//
// This is the comparison baseline for the paper's claim that the HMMM
// traversal "can assist in retrieving more accurate patterns quickly with
// lower computational costs": the baseline's ranking is exact (it considers
// every annotation-consistent candidate), but its cost grows with the
// product of per-event candidate counts, while the engine expands only the
// stochastically promising paths.
func BruteForce(m *hmmm.Model, q Query, topK int) (*Result, error) {
	if err := q.validateFor(m.NumConcepts()); err != nil {
		return nil, err
	}
	if topK <= 0 {
		topK = DefaultTopK
	}
	eng, err := NewEngine(m, Options{AnnotatedOnly: true})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for vi := 0; vi < m.NumVideos(); vi++ {
		if q.Scope != nil && q.Scope.Video != 0 && m.VideoIDs[vi] != q.Scope.Video {
			continue
		}
		res.Cost.VideosSeen++
		lo, hi := m.VideoStates(vi)
		if lo == hi {
			continue
		}
		steps := q.steps()
		var dfs func(j, after int, p *bfPath)
		dfs = func(j, after int, p *bfPath) {
			if j == len(steps) {
				res.Matches = append(res.Matches, p.match(m))
				return
			}
			st := steps[j]
			start := lo
			if after >= 0 {
				start = after + 1
			}
			for s := start; s < hi; s++ {
				if !q.Scope.contains(m.States[s].StartMS) {
					continue
				}
				if !stateHasStep(&m.States[s], st) {
					continue
				}
				if after >= 0 && !st.gapOK(m.States[after].StartMS, m.States[s].StartMS) {
					continue
				}
				var w float64
				if j == 0 {
					w = m.Pi1[s] * eng.simCounted(s, st, &res.Cost)
				} else {
					res.Cost.EdgeEvals++
					prev := p.states[len(p.states)-1]
					w = p.w * eng.transition(vi, prev, s) * eng.simCounted(s, st, &res.Cost)
				}
				dfs(j+1, s, p.extend(s, vi, w))
			}
		}
		dfs(0, -1, &bfPath{})
	}
	sortMatches(res.Matches)
	if len(res.Matches) > topK {
		res.Matches = res.Matches[:topK]
	}
	return res, nil
}

// GroundTruthCount returns the total number of annotation-consistent
// candidate sequences for the query (the size of the space BruteForce
// enumerates), without scoring them. The experiments use it to report the
// search-space reduction achieved by the stochastic traversal.
//
// Queries without gap constraints use a right-to-left dynamic program;
// gap-constrained queries fall back to explicit enumeration (their
// candidate spaces are small by construction).
func GroundTruthCount(m *hmmm.Model, q Query) int {
	if q.validateFor(m.NumConcepts()) != nil {
		return 0
	}
	steps := q.steps()
	constrained := q.Scope != nil
	for _, st := range steps {
		if st.MinGapMS > 0 || st.MaxGapMS > 0 {
			constrained = true
			break
		}
	}
	total := 0
	for vi := 0; vi < m.NumVideos(); vi++ {
		if q.Scope != nil && q.Scope.Video != 0 && m.VideoIDs[vi] != q.Scope.Video {
			continue
		}
		lo, hi := m.VideoStates(vi)
		if lo == hi {
			continue
		}
		if constrained {
			total += countConstrained(m, steps, q.Scope, lo, hi)
			continue
		}
		// counts[j][s] = number of ways to complete steps j.. starting at
		// state >= s. Computed right to left.
		c := len(steps)
		prev := make([]int, hi-lo+1)
		for j := c - 1; j >= 0; j-- {
			cur := make([]int, hi-lo+1)
			for s := hi - 1; s >= lo; s-- {
				cur[s-lo] = cur[s-lo+1]
				if stateHasStep(&m.States[s], steps[j]) {
					if j == c-1 {
						cur[s-lo]++
					} else {
						cur[s-lo] += prev[s-lo+1]
					}
				}
			}
			prev = cur
		}
		total += prev[0]
	}
	return total
}

// countConstrained enumerates gap- or scope-constrained sequences within
// one video.
func countConstrained(m *hmmm.Model, steps []Step, scope *Scope, lo, hi int) int {
	var dfs func(j, after int) int
	dfs = func(j, after int) int {
		if j == len(steps) {
			return 1
		}
		st := steps[j]
		start := lo
		if after >= 0 {
			start = after + 1
		}
		n := 0
		for s := start; s < hi; s++ {
			if !scope.contains(m.States[s].StartMS) {
				continue
			}
			if !stateHasStep(&m.States[s], st) {
				continue
			}
			if after >= 0 && !st.gapOK(m.States[after].StartMS, m.States[s].StartMS) {
				continue
			}
			n += dfs(j+1, s)
		}
		return n
	}
	return dfs(0, -1)
}

package hmmm

// BenchmarkMillionShot records the coarse→fine latency/memory curve the
// two-stage retrieval work targets (DESIGN.md §5f): exact-only vs
// prefiltered query latency and dense vs compact resident model bytes,
// at 1x (the paper's 11,567 shots), 10x, and 100x (~1.16M shots)
// archive scale. `make bench-million` captures the full curve into
// BENCH_retrieval.json; -short keeps only the 1x point (the CI smoke).

import (
	"fmt"
	"sync"
	"testing"

	core "github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/synthvideo"
	"github.com/videodb/hmmm/internal/videomodel"
)

// scalePoint is one point on the curve: the archive scale factor and the
// per-step coarse candidate budget used at that scale (a k-step query
// keeps up to k×limit videos; wider archives keep more absolute
// candidates but a smaller fraction).
type scalePoint struct {
	factor int
	limit  int
}

var scalePoints = []scalePoint{{1, 12}, {10, 12}, {100, 16}}

// scaleSuite lazily builds one model per scale factor, shared by every
// sub-benchmark so `go test -bench BenchmarkMillionShot` pays each
// build once.
var scaleSuite struct {
	mu     sync.Mutex
	models map[int]*core.Model
	shots  map[int]int
}

func scaleModel(b *testing.B, factor int) (*core.Model, int) {
	b.Helper()
	scaleSuite.mu.Lock()
	defer scaleSuite.mu.Unlock()
	if scaleSuite.models == nil {
		scaleSuite.models = make(map[int]*core.Model)
		scaleSuite.shots = make(map[int]int)
	}
	if m, ok := scaleSuite.models[factor]; ok {
		return m, scaleSuite.shots[factor]
	}
	cfg := synthvideo.ScaledArchive(2006, factor)
	archive, feats, err := synthvideo.GenerateArchive(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Build(archive, feats, core.BuildOptions{LearnP12: true})
	if err != nil {
		b.Fatal(err)
	}
	scaleSuite.models[factor] = m
	scaleSuite.shots[factor] = cfg.Shots
	return m, cfg.Shots
}

// scaleQueries is the fixed query mix each latency sub-benchmark cycles
// through: a single-event probe, a two-step temporal pattern, and a
// three-step pattern — the shapes the paper's Figure 5 walkthrough uses.
func scaleQueries() []retrieval.Query {
	return []retrieval.Query{
		retrieval.NewQuery(videomodel.EventGoal),
		retrieval.NewQuery(videomodel.EventCornerKick, videomodel.EventGoal),
		retrieval.NewQuery(videomodel.EventFreeKick, videomodel.EventFoul, videomodel.EventGoal),
	}
}

func BenchmarkMillionShot(b *testing.B) {
	for _, pt := range scalePoints {
		if testing.Short() && pt.factor > 1 {
			continue
		}
		m, shots := scaleModel(b, pt.factor)
		base := retrieval.Options{TopK: 10, Beam: 4, AnnotatedOnly: true}
		queries := scaleQueries()

		b.Run(fmt.Sprintf("scale=%dx/exact", pt.factor), func(b *testing.B) {
			eng, err := retrieval.NewEngine(m, base)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Retrieve(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("scale=%dx/coarse=%d", pt.factor, pt.limit), func(b *testing.B) {
			opts := base
			opts.CoarseCandidates = pt.limit
			eng, err := retrieval.NewEngine(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Retrieve(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})

		// The layout point: resident bytes per archive shot for the dense
		// float64 snapshot vs the compact layout, as custom metrics so the
		// curve lands in BENCH_retrieval.json alongside the latencies.
		b.Run(fmt.Sprintf("scale=%dx/layout", pt.factor), func(b *testing.B) {
			var dense, compact int
			for i := 0; i < b.N; i++ {
				dense = m.Snapshot().MemoryBytes()
				compact = m.CompactSnapshot().MemoryBytes()
			}
			b.ReportMetric(float64(dense)/float64(shots), "dense-B/shot")
			b.ReportMetric(float64(compact)/float64(shots), "compact-B/shot")
			b.ReportMetric(float64(dense)/float64(compact), "compression-x")
		})
	}
}

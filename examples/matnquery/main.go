// Matnquery demonstrates the MATN query model of Figure 4 on the paper's
// Section-3 example pattern:
//
//	"At first, a goal is resulted from a free kick. After that, a corner
//	 kick occurs at some point in time, followed by a player change, and
//	 finally another goal shot follows the player change."
//
// which the query language writes as
//
//	free_kick & goal -> corner_kick -> player_change -> goal
//
// The example also shows alternation and optional steps, and prints the
// transition networks the parser builds.
package main

import (
	"fmt"
	"log"
	"strings"

	hmmm "github.com/videodb/hmmm"
)

func main() {
	corpus, err := hmmm.GenerateCorpus(hmmm.CorpusConfig{Seed: 11, Videos: 12, Shots: 900, Annotated: 160})
	if err != nil {
		log.Fatal(err)
	}
	model, err := hmmm.BuildModel(corpus, hmmm.ModelOptions{LearnFeatureWeights: true})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := hmmm.NewEngine(model, hmmm.SearchOptions{TopK: 5, Beam: 4, CrossVideo: true})
	if err != nil {
		log.Fatal(err)
	}

	for _, src := range []string{
		"free_kick & goal -> corner_kick -> player_change -> goal", // the paper's example
		"foul -> yellow_card | red_card",                           // alternation
		"corner_kick -> foul? -> goal",                             // optional middle step
	} {
		fmt.Printf("query: %q\n", src)
		network, err := hmmm.ParseMATN(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  network: %s\n", network)
		queries, err := network.Compile()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  expands to %d linear pattern(s)\n", len(queries))

		var all []hmmm.Match
		for _, q := range queries {
			res, err := engine.Retrieve(q)
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, res.Matches...)
		}
		for i, m := range hmmm.MergeRanked(all, 3) {
			var steps []string
			for j := range m.Shots {
				var names []string
				for _, e := range model.States[m.States[j]].Events {
					names = append(names, e.String())
				}
				steps = append(steps, fmt.Sprintf("v%d/s%d[%s]", m.Videos[j], m.Shots[j], strings.Join(names, "+")))
			}
			fmt.Printf("  #%d score=%.4f  %s\n", i+1, m.Score, strings.Join(steps, " -> "))
		}
		fmt.Println()
	}
}

// Soccerquery reproduces the paper's Figure-5 scenario at full evaluation
// scale: a 54-video / 11,567-shot / 506-event archive queried for "a goal
// shot followed by a free kick", through the same client/server API the
// paper's retrieval interface uses.
//
// The example starts an in-process HTTP server (the hmmmd service), then
// drives it with the Go client: query, inspect the ranked patterns, send
// positive feedback on the exact ones, retrain, and query again.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"time"

	hmmmdb "github.com/videodb/hmmm"
	"github.com/videodb/hmmm/internal/api"
	"github.com/videodb/hmmm/internal/client"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/server"
)

func main() {
	// Paper-scale corpus: zero dimensions select 54 / 11,567 / 506.
	fmt.Println("building the paper-scale corpus (54 videos, 11,567 shots, 506 events)...")
	start := time.Now()
	corpus, err := hmmmdb.GenerateCorpus(hmmmdb.CorpusConfig{Seed: 2006})
	if err != nil {
		log.Fatal(err)
	}
	model, err := hmmmdb.BuildModel(corpus, hmmmdb.ModelOptions{LearnFeatureWeights: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ready in %.1fs\n\n", time.Since(start).Seconds())

	srv, err := server.New(server.Config{
		Model:            model,
		Options:          retrieval.Options{Beam: 4, TopK: 10},
		RetrainThreshold: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, nil)
	ctx := context.Background()

	// The Figure-5 query: a goal shot followed by a free kick.
	resp, err := cl.Query(ctx, api.QueryRequest{Pattern: "goal -> free_kick", TopK: 10})
	if err != nil {
		log.Fatal(err)
	}
	shots := 0
	for _, m := range resp.Matches {
		shots += len(m.Shots)
	}
	fmt.Printf("query %q: %d patterns (%d shots); paper reports 8 patterns (16 shots)\n",
		resp.Pattern, len(resp.Matches), shots)
	fmt.Printf("traversal cost: %d sim evals over %d videos\n\n", resp.Cost.SimEvals, resp.Cost.VideosSeen)
	for _, m := range resp.Matches {
		var labels []string
		for i := range m.Shots {
			labels = append(labels, fmt.Sprintf("v%d/s%d[%s]", m.Videos[i], m.Shots[i], strings.Join(m.Events[i], "+")))
		}
		fmt.Printf("  #%-2d score=%.4f  %s\n", m.Rank, m.Score, strings.Join(labels, " -> "))
	}

	// Mark the exact results positive (the Figure-5 drop-down feedback),
	// triggering the threshold retrain on the server.
	fmt.Println("\nsending positive feedback on exact matches...")
	for _, m := range resp.Matches {
		exact := true
		for i, evs := range m.Events {
			want := "goal"
			if i == 1 {
				want = "free_kick"
			}
			if !contains(evs, want) {
				exact = false
				break
			}
		}
		if !exact {
			continue
		}
		fb, err := cl.Feedback(ctx, m.States)
		if err != nil {
			log.Fatal(err)
		}
		if fb.Retrained {
			fmt.Println("  threshold reached: server retrained the HMMM offline")
		}
	}

	// Query again: confirmed patterns now rank with higher scores.
	resp2, err := cl.Query(ctx, api.QueryRequest{Pattern: "goal -> free_kick", TopK: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter retraining, top score %.4f (was %.4f)\n",
		topScore(resp2.Matches), topScore(resp.Matches))

	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d states, %d distinct positive patterns recorded\n",
		st.States, st.DistinctPatterns)
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func topScore(ms []api.MatchJSON) float64 {
	if len(ms) == 0 {
		return 0
	}
	return ms[0].Score
}

// Analytics tours the archive-analysis side of the library: video-level
// clustering by semantic event profile (the Section-4.2.2 purpose of the
// level-2 MMM), pattern-based video ranking, similarity browsing,
// stationary-distribution analysis of the trained chains, per-match score
// explanations, and query by example.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	hmmm "github.com/videodb/hmmm"
)

func main() {
	corpus, err := hmmm.GenerateCorpus(hmmm.CorpusConfig{Seed: 23, Videos: 12, Shots: 1200, Annotated: 360})
	if err != nil {
		log.Fatal(err)
	}
	model, err := hmmm.BuildModel(corpus, hmmm.ModelOptions{LearnFeatureWeights: true})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := hmmm.NewEngine(model, hmmm.SearchOptions{TopK: 5, Beam: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Cluster the archive by semantic event profile.
	fmt.Println("== video clustering by event profile (Section 4.2.2) ==")
	res, err := hmmm.ClusterVideos(model, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]string, len(corpus.Archive.Videos))
	for i, v := range corpus.Archive.Videos {
		labels[i] = v.Genre
	}
	for c := 0; c < 3; c++ {
		var members []string
		for vi, a := range res.Assign {
			if a == c {
				members = append(members, fmt.Sprintf("%s(%s)", corpus.Archive.Videos[vi].Name, labels[vi]))
			}
		}
		fmt.Printf("cluster %d: %s\n", c, strings.Join(members, " "))
	}
	fmt.Printf("purity vs generated genres: %.2f\n\n", hmmm.ClusterPurity(res.Assign, labels, 3))

	// 2. Rank videos for a pattern without touching the shot level.
	fmt.Println("== video ranking for pattern goal -> corner_kick ==")
	ranks, err := engine.RankVideos(hmmm.NewQuery(hmmm.EventGoal, hmmm.EventCornerKick))
	if err != nil {
		log.Fatal(err)
	}
	for _, vr := range ranks[:3] {
		fmt.Printf("  video %d (%s): %.6f\n", vr.VideoID,
			corpus.Archive.Videos[vr.VideoIdx].Genre, vr.Score)
	}

	// 3. Similarity browsing from the top-ranked video.
	fmt.Printf("\n== videos similar to video %d ==\n", ranks[0].VideoID)
	sims, err := engine.SimilarVideos(ranks[0].VideoIdx, 0.7, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, vr := range sims {
		fmt.Printf("  video %d (%s): %.4f\n", vr.VideoID,
			corpus.Archive.Videos[vr.VideoIdx].Genre, vr.Score)
	}

	// 4. Stationary analysis: which shots does the affinity structure
	// keep returning to?
	pi, err := model.StationaryPi1()
	if err != nil {
		log.Fatal(err)
	}
	type sp struct {
		state int
		p     float64
	}
	tops := make([]sp, len(pi))
	for i, p := range pi {
		tops[i] = sp{i, p}
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].p > tops[j].p })
	fmt.Println("\n== highest long-run visit probability states ==")
	for _, t := range tops[:3] {
		st := model.States[t.state]
		fmt.Printf("  state %d (shot %d, %v): %.4f\n", t.state, st.Shot, st.Events, t.p)
	}

	// 5. Explain the top match of a query.
	q := hmmm.NewQuery(hmmm.EventFoul, hmmm.EventFreeKick)
	rres, err := engine.Retrieve(q)
	if err != nil {
		log.Fatal(err)
	}
	if len(rres.Matches) > 0 {
		fmt.Println("\n== why the top foul -> free_kick match scored what it did ==")
		exps, err := engine.Explain(rres.Matches[0], q)
		if err != nil {
			log.Fatal(err)
		}
		for j, ex := range exps {
			factor := fmt.Sprintf("pi=%.4f", ex.Pi)
			if j > 0 {
				factor = fmt.Sprintf("a=%.4f", ex.Transition)
			}
			fmt.Printf("  step %d: %s sim=%.3f -> w=%.5f (top feature term: f%d %.3f)\n",
				j+1, factor, ex.Sim, ex.Weight, ex.Features[0].Feature, ex.Features[0].Term)
		}
	}

	// 6. Query by example: find shots like a known goal shot.
	var goalShot hmmm.Match
	gres, err := engine.Retrieve(hmmm.NewQuery(hmmm.EventGoal))
	if err != nil || len(gres.Matches) == 0 {
		log.Fatal("no goal shots")
	}
	goalShot = gres.Matches[0]
	raw := corpus.Features[model.States[goalShot.States[0]].Shot]
	qbe, err := engine.QueryByExample(raw, hmmm.EventGoal, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== shots most similar to the top goal shot (query by example) ==")
	for i, m := range qbe {
		fmt.Printf("  #%d state %d %v sim=%.4f\n", i+1, m.States[0], model.States[m.States[0]].Events, m.Score)
	}
}

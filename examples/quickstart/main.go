// Quickstart: build a small corpus, model it with HMMM, and run one
// temporal pattern query — the thirty-line tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	hmmm "github.com/videodb/hmmm"
)

func main() {
	// 1. Synthesize a small soccer-video corpus (deterministic in the seed).
	corpus, err := hmmm.GenerateCorpus(hmmm.CorpusConfig{Seed: 7, Videos: 8, Shots: 400, Annotated: 64})
	if err != nil {
		log.Fatal(err)
	}
	st := corpus.Archive.Stats()
	fmt.Printf("corpus: %d videos, %d shots, %d annotated events\n", st.Videos, st.Shots, st.Annotated)

	// 2. Build the two-level HMMM with learned feature-importance weights.
	model, err := hmmm.BuildModel(corpus, hmmm.ModelOptions{LearnFeatureWeights: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d shot states, %d videos, %d features\n", model.NumStates(), model.NumVideos(), model.K())

	// 3. Query: "a goal followed by a free kick".
	engine, err := hmmm.NewEngine(model, hmmm.SearchOptions{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Retrieve(hmmm.NewQuery(hmmm.EventGoal, hmmm.EventFreeKick))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop patterns for goal -> free_kick:\n")
	for i, m := range res.Matches {
		var steps []string
		for j := range m.Shots {
			steps = append(steps, fmt.Sprintf("video %d shot %d", m.Videos[j], m.Shots[j]))
		}
		fmt.Printf("  #%d score=%.4f  %s\n", i+1, m.Score, strings.Join(steps, " -> "))
	}
	fmt.Printf("cost: %d similarity evaluations across %d videos\n", res.Cost.SimEvals, res.Cost.VideosSeen)
}

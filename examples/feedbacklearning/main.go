// Feedbacklearning demonstrates the paper's relevance-feedback loop
// (Section 4.2.1.1): a simulated user judges retrieved patterns, positive
// patterns accumulate in the feedback log, and the offline trainer applies
// Eqs. (1)-(6) — after which confirmed patterns rank measurably higher.
package main

import (
	"fmt"
	"log"

	hmmm "github.com/videodb/hmmm"
	"github.com/videodb/hmmm/internal/feedback"
)

func main() {
	corpus, err := hmmm.GenerateCorpus(hmmm.CorpusConfig{Seed: 5, Videos: 10, Shots: 600, Annotated: 90})
	if err != nil {
		log.Fatal(err)
	}
	model, err := hmmm.BuildModel(corpus, hmmm.ModelOptions{LearnFeatureWeights: true})
	if err != nil {
		log.Fatal(err)
	}

	queries := []hmmm.Query{
		hmmm.NewQuery(hmmm.EventGoal, hmmm.EventFreeKick),
		hmmm.NewQuery(hmmm.EventFoul, hmmm.EventFreeKick),
		hmmm.NewQuery(hmmm.EventCornerKick, hmmm.EventGoal),
	}

	user := feedback.NewSimulatedUser(99, 0) // judges by ground truth, no noise
	logbook := hmmm.NewFeedbackLog()
	trainer := hmmm.NewTrainer(1)

	fmt.Println("round  mean-top-score  exact-in-top-5")
	for round := 0; round <= 5; round++ {
		// SimilarShots admitted so imperfect results exist to learn against.
		engine, err := hmmm.NewEngine(model, hmmm.SearchOptions{TopK: 10, Beam: 4, AnnotatedOnly: false})
		if err != nil {
			log.Fatal(err)
		}
		var topSum float64
		exact := 0
		var judged [][]int
		for _, q := range queries {
			res, err := engine.Retrieve(q)
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Matches) > 0 {
				topSum += res.Matches[0].Score
			}
			top5 := res.Matches
			if len(top5) > 5 {
				top5 = top5[:5]
			}
			for _, m := range top5 {
				if hmmm.ExactMatch(model, m, q) {
					exact++
				}
			}
			judged = append(judged, user.Judge(model, q, res.Matches)...)
		}
		fmt.Printf("%5d  %14.4f  %14d\n", round, topSum/float64(len(queries)), exact)
		if round == 5 {
			break
		}

		// The user marks the ground-truth-correct patterns positive; the
		// trainer rebuilds A1, Π1, A2, Π2 from the accumulated log.
		for _, states := range judged {
			if err := logbook.MarkPositive(model, states); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := trainer.MaybeRetrain(model, logbook); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nconfirmed patterns accumulate probability mass: scores and early precision rise.")
}

// Ingest demonstrates growing a live archive: a new raw video (continuous
// frames + audio, standing in for a camera feed) is segmented into shots,
// auto-annotated by a decision-tree event classifier, and folded into an
// existing HMMM without rebuilding it — after which queries immediately
// see the new material.
package main

import (
	"fmt"
	"log"

	hmmm "github.com/videodb/hmmm"
)

func main() {
	// An existing archive and model.
	corpus, err := hmmm.GenerateCorpus(hmmm.CorpusConfig{Seed: 4, Videos: 6, Shots: 300, Annotated: 48})
	if err != nil {
		log.Fatal(err)
	}
	model, err := hmmm.BuildModel(corpus, hmmm.ModelOptions{LearnFeatureWeights: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d videos, %d shots, %d model states\n",
		len(corpus.Archive.Videos), corpus.Archive.NumShots(), model.NumStates())

	// Train the event classifier on labeled shots (refs [6][7] style),
	// then build the ingestion pipeline.
	fmt.Println("training the event decision tree...")
	classifier, err := hmmm.TrainEventClassifier(1, 16)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := hmmm.NewIngestPipeline(classifier, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// New raw footage arrives: an eventful final ten minutes.
	timeline := []hmmm.Event{
		0, hmmm.EventFoul, hmmm.EventFreeKick, hmmm.EventGoal, 0,
		hmmm.EventGoalKick, hmmm.EventCornerKick, hmmm.EventGoal, hmmm.EventPlayerChange, 0,
	}
	raw := hmmm.SynthesizeRawVideo(99, "final-minutes", timeline, 4000)
	fmt.Printf("ingesting %q: %d frames, %.0fs of audio\n",
		raw.Name, len(raw.Frames), raw.Audio.Duration().Seconds())

	res, err := pipeline.Ingest(model, corpus.Archive, raw, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented into %d shots; classifier annotated %d of them\n",
		len(res.Video.Shots), res.AutoAnnotated)
	for _, s := range res.Video.Shots {
		if s.Annotated() {
			fmt.Printf("  shot %d [%dms-%dms]: %v\n", s.ID, s.StartMS, s.EndMS, s.Events)
		}
	}
	fmt.Printf("model now has %d states across %d videos\n", model.NumStates(), model.NumVideos())

	// The new video is immediately queryable.
	engine, err := hmmm.NewEngine(model, hmmm.SearchOptions{TopK: 5, Beam: 4})
	if err != nil {
		log.Fatal(err)
	}
	result, err := engine.Retrieve(hmmm.NewQuery(hmmm.EventGoal))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop goal shots after ingestion:")
	for i, m := range result.Matches {
		marker := ""
		if m.Videos[0] == res.Video.ID {
			marker = "   <-- from the ingested video"
		}
		fmt.Printf("  #%d score=%.4f video %d shot %d%s\n", i+1, m.Score, m.Videos[0], m.Shots[0], marker)
	}
}

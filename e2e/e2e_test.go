//go:build e2e

// Package e2e boots the real distributed deployment — N hmmm-shardd
// processes speaking the internal/rpc TCP protocol, coordinated by
// internal/coord — and runs the differential and fault-injection
// smoke against it. This is the layer the in-process suites cannot
// cover: real process boundaries, real sockets, real SIGKILL.
//
// Gated behind the e2e build tag (`make e2e`) because it shells out to
// `go build` and boots child processes; the tier-1 loop stays hermetic.
package e2e

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/videodb/hmmm/internal/coord"
	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/matn"
	"github.com/videodb/hmmm/internal/obs"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/retrieval/retrievaltest"
)

// The corpus every process generates independently: the build is
// deterministic, so three child processes and the in-test oracle all
// derive the identical model, which is what makes the differential
// meaningful across real process boundaries.
const (
	corpusSeed      = 31
	corpusVideos    = 6
	corpusShots     = 900
	corpusAnnotated = 300
	numShards       = 3
)

var patterns = []string{
	"goal",
	"free_kick",
	"goal -> free_kick",
	"foul -> goal",
	"corner_kick",
}

// buildShardd compiles cmd/hmmm-shardd once into dir.
func buildShardd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "hmmm-shardd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/hmmm-shardd")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hmmm-shardd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the child to
// bind. The tiny reuse race is acceptable in a test harness.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startShardd boots one shard server process.
func startShardd(t *testing.T, bin, addr string, idx int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-shard", fmt.Sprint(idx), "-of", fmt.Sprint(numShards),
		"-addr", addr,
		"-seed", fmt.Sprint(corpusSeed),
		"-videos", fmt.Sprint(corpusVideos),
		"-shots", fmt.Sprint(corpusShots),
		"-annotated", fmt.Sprint(corpusAnnotated),
		"-shutdown-grace", "200ms",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting shard %d: %v", idx, err)
	}
	return cmd
}

// TestDistributedServing is the end-to-end pass: boot the fleet, prove
// bit-identity against a local oracle, SIGKILL a shard and prove
// committed partials, restart it and prove full recovery, then shut
// everything down without leaking a goroutine.
func TestDistributedServing(t *testing.T) {
	baseline := runtime.NumGoroutine()

	bin := buildShardd(t, t.TempDir())
	addrs := make([]string, numShards)
	procs := make([]*exec.Cmd, numShards)
	for i := range addrs {
		addrs[i] = freeAddr(t)
		procs[i] = startShardd(t, bin, addrs[i], i)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	// The in-test oracle: the identical deterministic build the three
	// child processes each run for themselves.
	corpus, err := dataset.Build(dataset.Config{
		Seed: corpusSeed, Videos: corpusVideos, Shots: corpusShots,
		Annotated: corpusAnnotated, Fast: true,
	})
	if err != nil {
		t.Fatalf("building corpus: %v", err)
	}
	model, err := hmmm.Build(corpus.Archive, corpus.Features, hmmm.BuildOptions{LearnP12: true})
	if err != nil {
		t.Fatalf("building model: %v", err)
	}
	base := retrieval.Options{Beam: 4, TopK: 10}
	oracle, err := retrieval.NewEngine(model, base)
	if err != nil {
		t.Fatalf("oracle engine: %v", err)
	}

	reg := obs.NewRegistry()
	co, err := coord.Dial(strings.Join(addrs, ";"), 2*time.Second, coord.Options{
		RetryBase:      5 * time.Millisecond,
		RetryMax:       50 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		EjectBackoff:   100 * time.Millisecond,
		Metrics:        coord.NewMetrics(reg),
	}, base)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	err = co.WaitReady(ctx)
	cancel()
	if err != nil {
		t.Fatalf("fleet never became ready: %v", err)
	}

	queries := compileAll(t)

	// Phase 1: differential. Every pattern's coordinated ranking must be
	// bit-identical to the local single-engine oracle, with no shard
	// degraded — across real sockets and real gob frames.
	for qi, q := range queries {
		want, err := oracle.Retrieve(q)
		if err != nil {
			t.Fatalf("query %d: oracle: %v", qi, err)
		}
		got, err := co.Retrieve(q)
		if err != nil {
			t.Fatalf("query %d: coordinator: %v", qi, err)
		}
		if got.Cost.DegradedShards != 0 || got.Cost.Truncated {
			t.Fatalf("query %d degraded on a healthy fleet: %+v", qi, got.Cost)
		}
		retrievaltest.RequireSameMatches(t, fmt.Sprintf("query %d", qi), want.Matches, got.Matches)
	}
	t.Logf("differential: %d queries bit-identical across %d processes", len(queries), numShards)

	// Phase 2: chaos smoke. SIGKILL shard 0 — no drain, no goodbye —
	// and the fleet must keep answering with committed partials
	// (Truncated + DegradedShards), never an error.
	if err := procs[0].Process.Kill(); err != nil {
		t.Fatalf("killing shard 0: %v", err)
	}
	procs[0].Wait()
	procs[0] = nil
	degraded := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		res, err := co.Retrieve(queries[0])
		if err != nil {
			t.Fatalf("query against degraded fleet errored: %v", err)
		}
		if res.Cost.DegradedShards > 0 {
			if !res.Cost.Truncated {
				t.Fatal("degraded result must set Cost.Truncated")
			}
			degraded = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !degraded {
		t.Fatal("killed shard never surfaced as degraded")
	}
	if st := co.Stats(); st.DegradedQueries == 0 {
		t.Fatalf("stats report no degraded queries after the kill: %+v", st)
	}

	// Phase 3: recovery. Restart shard 0 on the same address; the
	// health gate must re-admit it and the ranking must return to the
	// exact oracle — no residue from the fault.
	procs[0] = startShardd(t, bin, addrs[0], 0)
	recovered := false
	deadline = time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		res, err := co.Retrieve(queries[0])
		if err != nil {
			t.Fatalf("query during recovery errored: %v", err)
		}
		if res.Cost.DegradedShards == 0 && !res.Cost.Truncated {
			recovered = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("restarted shard was never re-admitted")
	}
	for qi, q := range queries {
		want, _ := oracle.Retrieve(q)
		got, err := co.Retrieve(q)
		if err != nil {
			t.Fatalf("post-recovery query %d: %v", qi, err)
		}
		retrievaltest.RequireSameMatches(t, fmt.Sprintf("post-recovery query %d", qi), want.Matches, got.Matches)
	}
	t.Logf("recovery: fleet exact again after SIGKILL + restart")

	// Phase 4: clean shutdown. SIGTERM drains each process (exit 0),
	// the coordinator closes, and the test process must return to its
	// baseline goroutine count — a leaked rpc client or prober would
	// hold the count up.
	for i, p := range procs {
		if err := p.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signalling shard %d: %v", i, err)
		}
	}
	for i, p := range procs {
		if err := waitFor(p, 30*time.Second); err != nil {
			t.Fatalf("shard %d did not drain cleanly: %v", i, err)
		}
		procs[i] = nil
	}
	co.Close()

	settle := time.Now().Add(10 * time.Second)
	for time.Now().Before(settle) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak after shutdown: %d, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

func compileAll(t *testing.T) []retrieval.Query {
	t.Helper()
	var out []retrieval.Query
	for _, p := range patterns {
		qs, err := matn.CompileString(p)
		if err != nil {
			t.Fatalf("compiling %q: %v", p, err)
		}
		out = append(out, qs...)
	}
	return out
}

// waitFor waits for a child to exit, failing on a non-zero status or a
// timeout.
func waitFor(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("timed out after %v", timeout)
	}
}

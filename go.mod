module github.com/videodb/hmmm

go 1.22

# Build / verification entry points. `make verify` is the tier-1 loop:
# vet + build + full tests + race on the retrieval hot path.

GO ?= go

# Hot-path benchmarks captured into BENCH_retrieval.json.
BENCH_PATTERN := BenchmarkF2RetrievalGreedy$$|BenchmarkF5PaperQuery$$|BenchmarkParallelRetrieval|BenchmarkSimCache
# Offline-pipeline benchmarks captured into BENCH_build.json.
BENCH_BUILD_PATTERN := BenchmarkBuildPaperScale|BenchmarkRetrainPaperScale

.PHONY: build vet test race race-server race-obs race-shard race-live race-fed race-all verify e2e bench bench-build bench-scale bench-million bench-serving bench-serving-smoke bench-ingest bench-federated cover fuzz clean

# Packages whose per-package coverage `make cover` gates at 80%.
COVER_GATED := internal/shard internal/retrieval internal/matn internal/index internal/coord internal/rpc internal/live internal/videomodel internal/fed
COVER_MIN := 80.0

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/retrieval/...

race-server:
	$(GO) test -race ./internal/server/...

# The metrics registry and histogram invariants under concurrency.
race-obs:
	$(GO) test -race ./internal/obs/...

# The sharded scatter-gather path under the race detector: the
# differential suite plus the concurrent query/retrain/re-split hammer.
race-shard:
	$(GO) test -race ./internal/shard/...

# The live-ingest journal and delta sub-model under the race detector
# (the server-side ingest/compaction hammer runs in race-server).
race-live:
	$(GO) test -race ./internal/live/...

# The federation scatter/merge layer under the race detector (members
# fan out via par.For; the suite pins worker-count determinism).
race-fed:
	$(GO) test -race ./internal/fed/...

# Full-repo race sweep; slower than the targeted race targets, meant
# for CI and pre-release checks.
race-all:
	$(GO) test -race ./...

verify: vet build test race race-server race-obs race-shard race-live race-fed

# End-to-end distributed serving: builds cmd/hmmm-shardd, boots 3 real
# shard processes plus an in-process coordinator, and proves the
# differential (bit-identity vs a local oracle), the chaos smoke
# (SIGKILL one shard -> committed partials, restart -> exact again),
# and goroutine-leak-free shutdown, all under the race detector.
e2e:
	$(GO) test -tags e2e -race -count=1 -timeout 5m ./e2e/

# Heavy-traffic serving curve: cmd/hmmmload offers the same bursty
# mixed workload (repeated + unique + heavy queries) to an in-process
# server twice — coalescing + two-lane admission off, then on — and the
# two records land in BENCH_serving.json. The claim this captures: at
# saturating load with a >=30% repeat ratio, coalescing+lanes give
# higher goodput and a lower cheap-query p99 than the single semaphore.
bench-serving:
	$(GO) run ./cmd/hmmmload -compare -bench \
		| $(GO) run ./cmd/benchjson -out BENCH_serving.json \
			-note "request coalescing + two-lane admission vs single-semaphore serving"
	$(GO) run ./cmd/hmmmload -coord 3 -bench -assert-degraded -assert-no-errors \
		| $(GO) run ./cmd/benchjson -out BENCH_serving.json \
			-note "coordinated 3-shard serving; one shard killed at t/3 and restarted at 2t/3 (goodput + degraded rate through the fault)"

# Live-ingest serving curve: cmd/hmmmload offers videos to POST
# /api/ingest at a fixed rate (journal + compaction snapshot on disk, so
# the ack latency includes the fsync) while a background prober queries
# continuously; the record lands in BENCH_serving.json with the accept
# latency, the freshness lag (submit -> first scoped-query hit), the
# prober's tail latency (a serving pause during compaction would surface
# as its max), and the compaction count.
bench-ingest:
	$(GO) run ./cmd/hmmmload -ingest-rate 4 -duration 5s -ingest-compact-after 4 \
		-bench -assert-no-errors \
		| $(GO) run ./cmd/benchjson -out BENCH_serving.json \
			-note "live ingest at 4 videos/s: accept latency, freshness lag, prober tail through background compaction"

# Federated-retrieval smoke: one generated model per built-in domain
# behind a single server, POST /api/query/federated driven closed-loop
# with per-domain patterns (every query exercises the vocabulary-skip
# path on the other two members); the merged-query latency lands in
# BENCH_serving.json.
bench-federated:
	$(GO) run ./cmd/hmmmload -federated soccer,basketball,news \
		-duration 3s -videos 6 -shots 600 -annotated 300 \
		-bench -assert-no-errors \
		| $(GO) run ./cmd/benchjson -out BENCH_serving.json \
			-note "federated query over 3 domain models: merged-ranking latency, member skips via vocabulary gating"

# CI smoke for the serving path: a short single run that must produce
# coalesce hits and zero errors (admission 503s are not errors).
bench-serving-smoke:
	$(GO) run ./cmd/hmmmload -duration 2s -qps 1200 \
		-videos 6 -shots 1200 -annotated 400 \
		-assert-coalesce -assert-no-errors

# Per-package coverage with a floor on the packages whose correctness
# the differential harness and fuzz targets are meant to pin.
cover:
	@$(GO) test -cover ./... | tee /tmp/hmmm-cover.txt
	@ok=1; \
	for pkg in $(COVER_GATED); do \
		pct=$$(grep "hmmm/$$pkg[[:space:]]" /tmp/hmmm-cover.txt | grep -o '[0-9.]*% of statements' | cut -d% -f1); \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for $$pkg"; ok=0; \
		elif awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN{exit !(p < m)}'; then \
			echo "cover: $$pkg at $$pct% is below the $(COVER_MIN)% floor"; ok=0; \
		else echo "cover: $$pkg at $$pct% (floor $(COVER_MIN)%)"; fi; \
	done; [ $$ok -eq 1 ]

# Brief native-fuzz runs of the parser and log-decoder targets; CI runs
# the same budget.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzMATNParse -fuzztime=$(FUZZTIME) ./internal/matn/
	$(GO) test -fuzz=FuzzFeedbackLogDecode -fuzztime=$(FUZZTIME) ./internal/feedback/
	$(GO) test -fuzz=FuzzJournalDecode -fuzztime=$(FUZZTIME) ./internal/live/

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=200x -count=1 . \
		| $(GO) run ./cmd/benchjson -out BENCH_retrieval.json
	$(GO) test -run '^$$' -bench 'BenchmarkQueryWithMiddleware' -benchmem -benchtime=200x -count=1 ./internal/server/ \
		| $(GO) run ./cmd/benchjson -out BENCH_retrieval.json -note "resilience middleware overhead vs F5PaperQuery"
	$(GO) test -run '^$$' -bench 'BenchmarkQueryWithObs' -benchmem -benchtime=200x -count=1 ./internal/server/ \
		| $(GO) run ./cmd/benchjson -out BENCH_retrieval.json -note "observability overhead vs QueryWithMiddleware baseline (budget <=5%)"
	$(GO) test -run '^$$' -bench 'BenchmarkShardedRetrieval' -benchmem -benchtime=200x -count=1 . \
		| $(GO) run ./cmd/benchjson -out BENCH_retrieval.json -note "sharded scatter-gather vs single engine; K=1 overhead budget <=10%"
	@echo "appended to BENCH_retrieval.json"

# CI smoke for the coarse→fine pipeline: the differential recall gate
# (prefilter-on recall@10 >= 0.95 vs the exact oracle, plus the
# CoarseCandidates=0 bit-identity suite) and the 1x point of the scale
# benchmark in -short mode. Fast enough for every CI run; the full
# latency/memory curve is `make bench-million`.
bench-scale:
	$(GO) test -run 'TestCoarse|TestGroupCoarse' ./internal/retrieval/ ./internal/shard/
	$(GO) test -run '^$$' -bench BenchmarkMillionShot -short -benchtime=20x -count=1 .

# The full coarse→fine latency/memory curve (1x/10x/100x archive scale,
# ~1.16M shots at 100x), captured into BENCH_retrieval.json. The 100x
# model build takes a few minutes on one core.
bench-million:
	$(GO) test -run '^$$' -bench BenchmarkMillionShot -benchtime=100x -count=1 -timeout 30m . \
		| $(GO) run ./cmd/benchjson -out BENCH_retrieval.json -note "coarse->fine two-stage retrieval + compact layout scale curve"
	@echo "appended to BENCH_retrieval.json"

bench-build:
	$(GO) test -run '^$$' -bench '$(BENCH_BUILD_PATTERN)' -benchmem -benchtime=50x -count=1 . \
		| $(GO) run ./cmd/benchjson -out BENCH_build.json
	$(GO) test -run '^$$' -bench 'BenchmarkQueryUnderRetrain' -benchtime=200x -count=1 ./internal/server/ \
		| $(GO) run ./cmd/benchjson -out BENCH_build.json -note "query p99 under retrain"
	@echo "appended to BENCH_build.json"

clean:
	$(GO) clean ./...

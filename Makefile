# Build / verification entry points. `make verify` is the tier-1 loop:
# vet + build + full tests + race on the retrieval hot path.

GO ?= go

# Hot-path benchmarks captured into BENCH_retrieval.json.
BENCH_PATTERN := BenchmarkF2RetrievalGreedy$$|BenchmarkF5PaperQuery$$|BenchmarkParallelRetrieval|BenchmarkSimCache
# Offline-pipeline benchmarks captured into BENCH_build.json.
BENCH_BUILD_PATTERN := BenchmarkBuildPaperScale|BenchmarkRetrainPaperScale

.PHONY: build vet test race race-server race-obs race-all verify bench bench-build clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/retrieval/...

race-server:
	$(GO) test -race ./internal/server/...

# The metrics registry and histogram invariants under concurrency.
race-obs:
	$(GO) test -race ./internal/obs/...

# Full-repo race sweep; slower than the targeted race targets, meant
# for CI and pre-release checks.
race-all:
	$(GO) test -race ./...

verify: vet build test race race-server race-obs

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=200x -count=1 . \
		| $(GO) run ./cmd/benchjson -out BENCH_retrieval.json
	$(GO) test -run '^$$' -bench 'BenchmarkQueryWithMiddleware' -benchmem -benchtime=200x -count=1 ./internal/server/ \
		| $(GO) run ./cmd/benchjson -out BENCH_retrieval.json -note "resilience middleware overhead vs F5PaperQuery"
	$(GO) test -run '^$$' -bench 'BenchmarkQueryWithObs' -benchmem -benchtime=200x -count=1 ./internal/server/ \
		| $(GO) run ./cmd/benchjson -out BENCH_retrieval.json -note "observability overhead vs QueryWithMiddleware baseline (budget <=5%)"
	@echo "appended to BENCH_retrieval.json"

bench-build:
	$(GO) test -run '^$$' -bench '$(BENCH_BUILD_PATTERN)' -benchmem -benchtime=50x -count=1 . \
		| $(GO) run ./cmd/benchjson -out BENCH_build.json
	$(GO) test -run '^$$' -bench 'BenchmarkQueryUnderRetrain' -benchtime=200x -count=1 ./internal/server/ \
		| $(GO) run ./cmd/benchjson -out BENCH_build.json -note "query p99 under retrain"
	@echo "appended to BENCH_build.json"

clean:
	$(GO) clean ./...

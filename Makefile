# Build / verification entry points. `make verify` is the tier-1 loop:
# vet + build + full tests + race on the retrieval hot path.

GO ?= go

# Hot-path benchmarks captured into BENCH_retrieval.json.
BENCH_PATTERN := BenchmarkF2RetrievalGreedy$$|BenchmarkF5PaperQuery$$|BenchmarkParallelRetrieval|BenchmarkSimCache

.PHONY: build vet test race verify bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/retrieval/...

verify: vet build test race

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=200x -count=1 . \
		| $(GO) run ./cmd/benchjson > BENCH_retrieval.json
	@echo "wrote BENCH_retrieval.json"

clean:
	$(GO) clean ./...

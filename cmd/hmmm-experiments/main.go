// Command hmmm-experiments regenerates the paper's tables and figures
// (see DESIGN.md §4 for the index) and prints each as a textual report.
//
// Usage:
//
//	hmmm-experiments [flags]
//
//	-exp    string  experiment to run: T1, F1..F5, X1..X3, or "all"
//	-seed   uint    corpus seed (default 42)
//	-scale  float   corpus scale relative to the paper's 54/11567/506
//	                (default 1.0; use 0.1 for a quick pass)
//	-out    string  write the report to a file as well as stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmm-experiments: ")

	var (
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		exp   = flag.String("exp", "all", "experiment ID (T1, F1..F5, X1..X5) or all")
		seed  = flag.Uint64("seed", 42, "corpus seed")
		scale = flag.Float64("scale", 1.0, "corpus scale relative to the paper")
		out   = flag.String("out", "", "also write the report to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("T1  Table 1: the 20 visual/audio features")
		fmt.Println("F1  Figure 1: full framework pipeline")
		fmt.Println("F2  Figure 2: retrieval process trace")
		fmt.Println("F3  Figure 3: lattice traversal cost vs C")
		fmt.Println("F4  Figure 4: MATN query model")
		fmt.Println("F5  Figure 5: paper-scale corpus + headline query")
		fmt.Println("X1  claim: lower computational costs (vs exhaustive)")
		fmt.Println("X2  claim: continuous improvement from feedback")
		fmt.Println("X3  ablation: P1,2 / A1 training / beam width")
		fmt.Println("X4  extension: semi-automatic annotation")
		fmt.Println("X5  extension: video clustering (Sec. 4.2.2)")
		return
	}

	cfg := dataset.Config{
		Seed:      *seed,
		Videos:    maxInt(2, int(54**scale)),
		Shots:     maxInt(20, int(11567**scale)),
		Annotated: maxInt(4, int(506**scale)),
		Fast:      true,
	}
	fmt.Printf("building suite: %d videos / %d shots / %d annotated (seed %d)\n",
		cfg.Videos, cfg.Shots, cfg.Annotated, *seed)
	start := time.Now()
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		log.Fatalf("building suite: %v", err)
	}
	fmt.Printf("suite ready in %.1fs\n\n", time.Since(start).Seconds())

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("creating output file: %v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if strings.EqualFold(*exp, "all") {
		for _, r := range suite.RunAll() {
			fmt.Fprintln(w, r.String())
		}
		return
	}
	r, err := suite.Run(*exp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w, r.String())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

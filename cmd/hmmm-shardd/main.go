// Command hmmm-shardd serves ONE shard of an HMMM archive over the
// compact TCP protocol of internal/rpc, as one backend of a
// coordinator (hmmmd -coord, or any internal/coord user).
//
// Every shard server and the coordinator must derive their model from
// the same source — the same -model snapshot or the same generation
// flags (-seed/-videos/-shots/-annotated) — and agree on -of: the
// shard split is deterministic, so identical inputs give every process
// the identical by-video partition, and the coordinator's merged
// ranking is bit-identical to serving the whole archive locally. The
// coordinator's WaitReady verifies each endpoint's (shard, of) identity
// at startup, so a mis-wired address fails fast instead of merging the
// wrong partition.
//
// Usage:
//
//	hmmm-shardd -shard 0 -of 4 [flags]
//
//	-shard     int     this server's shard index (required, 0-based)
//	-of        int     total shard count of the split (required)
//	-addr      string  listen address (default 127.0.0.1:8090)
//	-model     string  load a model snapshot written by hmmm-gen;
//	                   empty generates the corpus in memory
//	-seed      uint    seed for the in-memory corpus (default 1)
//	-videos    int     in-memory corpus videos (default 54)
//	-shots     int     in-memory corpus shots (default 11567)
//	-annotated int     in-memory corpus annotated shots (default 506)
//	-generation uint   model generation stamped on every response; bump
//	                   it in lock-step across shards when rolling out a
//	                   new model so the coordinator never merges mixed
//	                   generations (default 1)
//	-coarse-candidates int  coarse prefilter budget per query step
//	                   (0 = exact-only); must match the coordinator's
//	-shutdown-grace duration  drain window before close (default 5s)
//
// On SIGINT/SIGTERM the server flips to DRAINING (retrievals are
// refused with a transient error the coordinator retries elsewhere,
// status still answers), waits the grace window for in-flight requests,
// then closes.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/rpc"
	"github.com/videodb/hmmm/internal/shard"
	"github.com/videodb/hmmm/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmm-shardd: ")

	var (
		shardIdx  = flag.Int("shard", -1, "this server's shard index (0-based)")
		of        = flag.Int("of", 0, "total shard count of the split")
		addr      = flag.String("addr", "127.0.0.1:8090", "listen address")
		modelPath = flag.String("model", "", "model snapshot to shard (empty = generate)")
		seed      = flag.Uint64("seed", 1, "seed for the generated corpus")
		videos    = flag.Int("videos", 54, "generated corpus videos")
		shots     = flag.Int("shots", 11567, "generated corpus shots")
		annotated = flag.Int("annotated", 506, "generated corpus annotated shots")
		gen       = flag.Uint64("generation", 1, "model generation stamped on responses")
		coarse    = flag.Int("coarse-candidates", 0, "coarse prefilter budget per query step (0 = exact-only)")
		grace     = flag.Duration("shutdown-grace", 5*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()

	if *of <= 0 || *shardIdx < 0 || *shardIdx >= *of {
		log.Fatalf("need -shard in [0, of) and -of >= 1 (got -shard %d -of %d)", *shardIdx, *of)
	}

	var model *hmmm.Model
	if *modelPath != "" {
		var err error
		var from string
		model, from, err = store.LoadModelRecover(*modelPath)
		if err != nil {
			log.Fatalf("loading model: %v", err)
		}
		if from != *modelPath {
			log.Printf("WARNING: model %s unreadable; recovered from %s", *modelPath, from)
		}
	} else {
		corpus, err := dataset.Build(dataset.Config{
			Seed: *seed, Videos: *videos, Shots: *shots, Annotated: *annotated, Fast: true,
		})
		if err != nil {
			log.Fatalf("building corpus: %v", err)
		}
		model, err = hmmm.Build(corpus.Archive, corpus.Features, hmmm.BuildOptions{LearnP12: true})
		if err != nil {
			log.Fatalf("building model: %v", err)
		}
	}

	shards, err := shard.Split(model, *of)
	if err != nil {
		log.Fatalf("splitting model: %v", err)
	}
	if len(shards) != *of {
		// The archive could not fill the requested split; serving a
		// different partition than the coordinator expects would merge
		// garbage, so refuse loudly.
		log.Fatalf("archive splits into %d shards, not the requested %d; lower -of on every process", len(shards), *of)
	}
	svc, err := rpc.NewShardService(shards[*shardIdx], *shardIdx, *of,
		retrieval.Options{Beam: 4, TopK: 10, CoarseCandidates: *coarse}, *gen)
	if err != nil {
		log.Fatalf("shard service: %v", err)
	}

	srv := rpc.NewServer(svc, log.Printf)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	st := svc.Status()
	fmt.Printf("serving shard %d of %d (%d videos, %d states) generation %d on %s\n",
		st.Shard, st.OfShards, st.Videos, st.States, *gen, ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-sigc:
		// Drain first: retrievals get a transient refusal the coordinator
		// routes around, in-flight work finishes inside the grace window.
		log.Printf("signal received; draining for up to %v", *grace)
		srv.Drain()
		time.Sleep(*grace)
		srv.Close()
		log.Printf("drained; bye")
	}
}

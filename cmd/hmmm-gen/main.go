// Command hmmm-gen generates a synthetic soccer-video corpus, builds the
// HMMM over it, and persists both to disk.
//
// Usage:
//
//	hmmm-gen [flags]
//
//	-seed      uint   corpus seed (default 1)
//	-videos    int    number of videos (default: paper scale, 54)
//	-shots     int    total shots (default 11567)
//	-annotated int    annotated event shots (default 506)
//	-scale     string archive-size preset: paper, 10x, or 100x. Presets
//	                  skip raster rendering and sample features directly
//	                  (synthvideo.GenerateArchive), so 100x (540 videos,
//	                  ~1.16M shots) generates in seconds. Overrides
//	                  -videos/-shots/-annotated; incompatible with
//	                  -dump-media and -ground-truth.
//	-compact   bool   write the model in the compact float32 layout
//	                  (store.SaveModelCompact); loads transparently
//	-corpus    string corpus output path (default corpus.gob)
//	-model     string model output path (default model.gob)
//	-json      string optional path for a JSON model export
//	-dump-media string write sample PPM frames + WAV clips per event class
//	-ground-truth string write the annotation ground truth as CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/media"
	"github.com/videodb/hmmm/internal/store"
	"github.com/videodb/hmmm/internal/synthaudio"
	"github.com/videodb/hmmm/internal/synthvideo"
	"github.com/videodb/hmmm/internal/videomodel"
	"github.com/videodb/hmmm/internal/xrand"
)

// dumpMedia renders one sample shot per event class (plus ordinary play)
// and writes its middle frame as PPM and its audio as WAV, so the
// synthetic substrate can be inspected with ordinary viewers.
func dumpMedia(dir string, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rng := xrand.New(seed)
	renderer := synthvideo.NewRenderer(96, 64, 250) // higher-res for viewing
	classes := append([]videomodel.Event{videomodel.EventNone}, videomodel.AllEvents()...)
	for _, class := range classes {
		shotRng := rng.Fork(uint64(class))
		frames := renderer.RenderShot(shotRng.Fork(1), class, 3000)
		clip := synthaudio.Synthesize(shotRng.Fork(2), class, 3000)

		ppm, err := os.Create(filepath.Join(dir, class.String()+".ppm"))
		if err != nil {
			return err
		}
		if err := media.WritePPM(ppm, frames[len(frames)/2]); err != nil {
			ppm.Close()
			return err
		}
		if err := ppm.Close(); err != nil {
			return err
		}

		wav, err := os.Create(filepath.Join(dir, class.String()+".wav"))
		if err != nil {
			return err
		}
		if err := media.WriteWAV(wav, clip); err != nil {
			wav.Close()
			return err
		}
		if err := wav.Close(); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmm-gen: ")

	var (
		seed       = flag.Uint64("seed", 1, "corpus generation seed")
		videos     = flag.Int("videos", 54, "number of videos")
		shots      = flag.Int("shots", 11567, "total shots across all videos")
		annotated  = flag.Int("annotated", 506, "annotated event shots")
		scale      = flag.String("scale", "", "archive preset: paper, 10x, or 100x (skips rendering; overrides -videos/-shots/-annotated)")
		compact    = flag.Bool("compact", false, "write the model in the compact float32 snapshot layout")
		corpusPath = flag.String("corpus", "corpus.gob", "corpus output path")
		modelPath  = flag.String("model", "model.gob", "model output path")
		jsonPath   = flag.String("json", "", "optional JSON model export path")
		mediaDir   = flag.String("dump-media", "", "write one sample PPM frame + WAV clip per event class to this directory")
		truthCSV   = flag.String("ground-truth", "", "write the annotation ground truth as CSV to this path")
	)
	flag.Parse()

	start := time.Now()
	var corpus *dataset.Corpus
	if *scale != "" {
		if *mediaDir != "" || *truthCSV != "" {
			log.Fatal("-scale presets do not render media; drop -dump-media/-ground-truth")
		}
		var acfg synthvideo.ArchiveConfig
		switch *scale {
		case "paper":
			acfg = synthvideo.PaperArchive(*seed)
		case "10x":
			acfg = synthvideo.ScaledArchive(*seed, 10)
		case "100x":
			acfg = synthvideo.ScaledArchive(*seed, 100)
		default:
			log.Fatalf("unknown -scale %q (want paper, 10x, or 100x)", *scale)
		}
		archive, feats, err := synthvideo.GenerateArchive(acfg)
		if err != nil {
			log.Fatalf("generating archive: %v", err)
		}
		corpus = &dataset.Corpus{
			Archive:  archive,
			Features: feats,
			Config: dataset.Config{
				Seed: acfg.Seed, Videos: acfg.Videos,
				Shots: acfg.Shots, Annotated: acfg.Annotated, Fast: true,
			},
		}
	} else {
		cfg := dataset.Config{
			Seed: *seed, Videos: *videos, Shots: *shots, Annotated: *annotated, Fast: true,
		}
		var err error
		corpus, err = dataset.Build(cfg)
		if err != nil {
			log.Fatalf("building corpus: %v", err)
		}
	}
	st := corpus.Archive.Stats()
	fmt.Printf("corpus: %d videos, %d shots, %d annotated events (%.1fs)\n",
		st.Videos, st.Shots, st.Annotated, time.Since(start).Seconds())

	start = time.Now()
	model, err := hmmm.Build(corpus.Archive, corpus.Features, hmmm.BuildOptions{LearnP12: true})
	if err != nil {
		log.Fatalf("building model: %v", err)
	}
	fmt.Printf("model: %d states, %d videos, %d concepts, K=%d (%.2fs)\n",
		model.NumStates(), model.NumVideos(), model.NumConcepts(), model.K(), time.Since(start).Seconds())

	if err := store.SaveCorpus(*corpusPath, corpus); err != nil {
		log.Fatalf("saving corpus: %v", err)
	}
	saveModel := store.SaveModel
	if *compact {
		saveModel = store.SaveModelCompact
	}
	if err := saveModel(*modelPath, model); err != nil {
		log.Fatalf("saving model: %v", err)
	}
	fmt.Printf("wrote %s and %s\n", *corpusPath, *modelPath)

	if *truthCSV != "" {
		f, err := os.Create(*truthCSV)
		if err != nil {
			log.Fatalf("creating ground-truth CSV: %v", err)
		}
		if err := corpus.WriteGroundTruthCSV(f); err != nil {
			f.Close()
			log.Fatalf("writing ground-truth CSV: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing ground-truth CSV: %v", err)
		}
		fmt.Printf("wrote %s\n", *truthCSV)
	}

	if *mediaDir != "" {
		if err := dumpMedia(*mediaDir, *seed); err != nil {
			log.Fatalf("dumping media: %v", err)
		}
		fmt.Printf("wrote sample media to %s\n", *mediaDir)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatalf("creating JSON export: %v", err)
		}
		defer f.Close()
		if err := store.ExportModelJSON(f, model); err != nil {
			log.Fatalf("exporting JSON: %v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// Command hmmmload is an open-loop load generator for the HMMM query
// API: it offers queries at a fixed rate regardless of how fast the
// server answers (so a saturated server accumulates queue pressure
// instead of silently slowing the generator down, which is how real
// traffic behaves) and reports the achieved throughput, the latency
// distribution, the shed rate, and the coalesce hit rate.
//
// The workload mixes three traffic classes, tunable by ratio:
//
//   - repeated cheap queries drawn from a small pattern pool — the
//     coalescing substrate (identical in-flight queries share one
//     execution);
//   - unique cheap queries (per-request time scopes) that can never
//     coalesce;
//   - heavy similarity queries that classify into the server's heavy
//     admission lane.
//
// Usage:
//
//	hmmmload [flags]
//
//	-addr          target server base URL (e.g. http://localhost:8077);
//	               empty runs an in-process server over a generated corpus
//	-qps           offered load in queries/second (default 1600)
//	-duration      how long to offer load (default 5s)
//	-repeat        fraction of cheap traffic drawn from the repeated pool
//	               (default 0.5)
//	-heavy         fraction of all traffic that is heavy (default 0.3)
//	-timeout-ms    per-query deadline sent with each request (default 2000)
//	-burst         requests per arrival burst (default 64; 1 = smooth)
//	-seed          workload RNG seed (default 1)
//	-compare       in-process only: run the identical workload twice —
//	               coalescing+lanes off, then on — and emit both results
//	-bench         emit `go test -bench`-style result lines on stdout for
//	               cmd/benchjson (human summary always goes to stderr)
//
// In-process server knobs (ignored with -addr):
//
//	-videos, -shots, -annotated, -corpus-seed   generated corpus size
//	-max-inflight   admission ceiling (default 8; small enough to
//	                saturate a laptop CPU at the default -qps)
//	-coalesce       enable request coalescing + two-lane admission
//	                (default true; -compare overrides)
//	-fast-lane-cost lane threshold; 0 picks one automatically between
//	                the workload's cheap and heavy cost estimates
//
// CI assertions (exit status 3 when violated):
//
//	-assert-coalesce   require at least one coalesce hit
//	-assert-no-errors  require zero transport errors and zero 5xx other
//	                   than admission 503s
//
// Distributed-serving scenario (in-process only):
//
//	-coord N        serve the workload through a coordinator over N real
//	                TCP shard servers (internal/rpc) instead of a single
//	                engine; goodput and the degraded-query rate are
//	                reported and emitted on the -bench line
//	-coord-fault    kill one shard a third of the way into the run and
//	                restart it at two thirds (default true with -coord):
//	                queries through the fault window return committed
//	                partials (200 + cost.degraded_shards), never errors
//	-assert-degraded   require at least one degraded query (proves the
//	                   fault window actually hit traffic)
//
// Live-ingest scenario (in-process only, DESIGN.md §5i):
//
//	-ingest-rate R  offer R videos/second to POST /api/ingest for
//	                -duration while a background prober queries the
//	                server continuously. Reports accept latency (ack =
//	                journaled + queryable), freshness lag (submit to
//	                first scoped-query hit), the prober's latency during
//	                the run (compaction pauses would surface as its max),
//	                and the compaction count
//	-ingest-compact-after N  fold the delta every N accepted videos
//	                         (default 4, so a few-second run compacts
//	                         several times)
//
// Federated scenario (in-process only, DESIGN.md §5j):
//
//	-federated a,b,c  boot one generated model per listed domain and
//	                  drive POST /api/query/federated with per-domain
//	                  patterns for -duration, reporting the merged-query
//	                  latency distribution and per-member skip counts
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/videodb/hmmm/internal/api"
	"github.com/videodb/hmmm/internal/coord"
	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/fed"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/ingest"
	"github.com/videodb/hmmm/internal/live"
	"github.com/videodb/hmmm/internal/matn"
	"github.com/videodb/hmmm/internal/mining"
	"github.com/videodb/hmmm/internal/obs"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/rpc"
	"github.com/videodb/hmmm/internal/server"
	"github.com/videodb/hmmm/internal/shard"
	"github.com/videodb/hmmm/internal/shotdetect"
	"github.com/videodb/hmmm/internal/synthvideo"
	"github.com/videodb/hmmm/internal/videomodel"
)

// cheapPool is the repeated-query substrate: a handful of patterns so
// concurrent arrivals collide on the same coalesce key. heavyPool uses
// similarity search (every state is a candidate), which estimates
// orders of magnitude more lattice work and lands in the heavy lane.
var (
	cheapPool = []string{"goal", "free_kick", "goal -> free_kick", "corner_kick"}
	heavyPool = []string{"foul -> foul -> foul", "foul -> goal -> free_kick"}
)

type opts struct {
	addr      string
	qps       float64
	duration  time.Duration
	repeat    float64
	heavy     float64
	timeoutMS int
	burst     int
	seed      int64
	compare   bool
	bench     bool

	videos, shots, annotated int
	corpusSeed               uint64
	heavyBeam                int
	maxInflight              int
	coalesce                 bool
	fastLaneCost             int

	coord      int
	coordFault bool

	ingestRate         float64
	ingestCompactAfter int

	federated string

	assertCoalesce bool
	assertNoErrors bool
	assertDegraded bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmmload: ")

	var o opts
	flag.StringVar(&o.addr, "addr", "", "target server base URL (empty = in-process server)")
	flag.Float64Var(&o.qps, "qps", 1600, "offered load in queries/second")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "load duration")
	flag.Float64Var(&o.repeat, "repeat", 0.5, "fraction of cheap traffic from the repeated pool")
	flag.Float64Var(&o.heavy, "heavy", 0.3, "fraction of traffic that is heavy")
	flag.IntVar(&o.timeoutMS, "timeout-ms", 2000, "per-query deadline sent with each request")
	flag.IntVar(&o.burst, "burst", 64, "requests per arrival burst (1 = smooth arrivals)")
	flag.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	flag.BoolVar(&o.compare, "compare", false, "run the workload with coalescing+lanes off then on (in-process only)")
	flag.BoolVar(&o.bench, "bench", false, "emit benchjson-parseable result lines on stdout")
	flag.IntVar(&o.videos, "videos", 12, "in-process corpus videos")
	flag.IntVar(&o.shots, "shots", 4000, "in-process corpus shots")
	flag.IntVar(&o.annotated, "annotated", 1200, "in-process corpus annotated shots")
	flag.IntVar(&o.heavyBeam, "heavy-beam", 128, "beam width sent with heavy queries")
	var corpusSeed uint64
	flag.Uint64Var(&corpusSeed, "corpus-seed", 7, "in-process corpus seed")
	flag.IntVar(&o.maxInflight, "max-inflight", 8, "in-process admission ceiling")
	flag.BoolVar(&o.coalesce, "coalesce", true, "in-process: enable coalescing + two-lane admission")
	flag.IntVar(&o.fastLaneCost, "fast-lane-cost", 0, "in-process lane threshold (0 = auto)")
	flag.IntVar(&o.coord, "coord", 0, "serve through a coordinator over this many TCP shard servers (0 = off)")
	flag.BoolVar(&o.coordFault, "coord-fault", true, "with -coord: kill one shard at t/3, restart it at 2t/3")
	flag.Float64Var(&o.ingestRate, "ingest-rate", 0, "offer this many videos/second to live ingest (0 = off)")
	flag.IntVar(&o.ingestCompactAfter, "ingest-compact-after", 4, "with -ingest-rate: fold the delta every N accepted videos")
	flag.StringVar(&o.federated, "federated", "", "comma-separated domains: drive federated queries over one generated model per domain")
	flag.BoolVar(&o.assertCoalesce, "assert-coalesce", false, "fail unless at least one coalesce hit occurred")
	flag.BoolVar(&o.assertNoErrors, "assert-no-errors", false, "fail on any transport error or non-503 5xx")
	flag.BoolVar(&o.assertDegraded, "assert-degraded", false, "fail unless at least one query degraded (with -coord-fault)")
	flag.Parse()
	o.corpusSeed = corpusSeed

	if o.compare && o.addr != "" {
		log.Fatal("-compare needs the in-process server (drop -addr)")
	}
	if o.coord > 0 && (o.addr != "" || o.compare) {
		log.Fatal("-coord needs the in-process server and is incompatible with -compare")
	}
	if o.ingestRate > 0 && (o.addr != "" || o.compare || o.coord > 0) {
		log.Fatal("-ingest-rate needs the in-process server and is incompatible with -compare and -coord")
	}
	if o.federated != "" && (o.addr != "" || o.compare || o.coord > 0 || o.ingestRate > 0) {
		log.Fatal("-federated needs the in-process server and is incompatible with -compare, -coord, and -ingest-rate")
	}

	if o.federated != "" {
		rep := runFederated(o)
		rep.report(os.Stderr)
		if o.bench {
			rep.benchLine(os.Stdout)
		}
		if o.assertNoErrors && rep.errors > 0 {
			log.Printf("ASSERT FAILED (federated): %d errors", rep.errors)
			os.Exit(3)
		}
		return
	}

	var model *hmmm.Model
	var corpus *dataset.Corpus
	if o.addr == "" {
		start := time.Now()
		var err error
		corpus, err = dataset.Build(dataset.Config{
			Seed: o.corpusSeed, Videos: o.videos, Shots: o.shots,
			Annotated: o.annotated, Fast: true,
		})
		if err != nil {
			log.Fatalf("building corpus: %v", err)
		}
		model, err = hmmm.Build(corpus.Archive, corpus.Features, hmmm.BuildOptions{LearnP12: true})
		if err != nil {
			log.Fatalf("building model: %v", err)
		}
		fmt.Fprintf(os.Stderr, "hmmmload: corpus %dv/%ds built in %.1fs\n",
			o.videos, o.shots, time.Since(start).Seconds())
	}

	failed := false
	if o.ingestRate > 0 {
		rep := runIngestLoad(model, corpus, o)
		rep.report(os.Stderr)
		if o.bench {
			rep.benchLine(os.Stdout)
		}
		if o.assertNoErrors && (rep.errors > 0 || rep.freshMisses > 0) {
			log.Printf("ASSERT FAILED (ingest): %d errors, %d freshness misses", rep.errors, rep.freshMisses)
			os.Exit(3)
		}
		return
	}
	if o.coord > 0 {
		rep := runCoord(model, o)
		rep.report(os.Stderr)
		if o.bench {
			rep.benchLine(os.Stdout)
		}
		if o.assertNoErrors && rep.errors > 0 {
			log.Printf("ASSERT FAILED (%s): %d errors", rep.mode, rep.errors)
			failed = true
		}
		if o.assertDegraded && rep.degradedQueries == 0 {
			log.Printf("ASSERT FAILED (%s): no degraded queries — the fault window missed all traffic", rep.mode)
			failed = true
		}
		if failed {
			os.Exit(3)
		}
		return
	}
	run := func(mode string, coalesce bool) {
		url := o.addr
		var stop func()
		if o.addr == "" {
			var err error
			url, stop, err = selfServe(model, o, coalesce)
			if err != nil {
				log.Fatalf("in-process server: %v", err)
			}
			defer stop()
		}
		rep := drive(url, o)
		rep.mode = mode
		rep.report(os.Stderr)
		if o.bench {
			rep.benchLine(os.Stdout)
		}
		if o.assertCoalesce && rep.coalesceHits == 0 {
			log.Printf("ASSERT FAILED (%s): no coalesce hits", mode)
			failed = true
		}
		if o.assertNoErrors && rep.errors > 0 {
			log.Printf("ASSERT FAILED (%s): %d errors", mode, rep.errors)
			failed = true
		}
	}

	if o.compare {
		run("off", false)
		run("on", true)
	} else {
		mode := "on"
		if o.addr == "" && !o.coalesce {
			mode = "off"
		}
		run(mode, o.coalesce)
	}
	if failed {
		os.Exit(3)
	}
}

// selfServe starts an in-process server over model and returns its base
// URL and a shutdown func. With coalesce off it mirrors the plain
// single-semaphore configuration; with it on it enables coalescing and
// the two-lane controller, auto-deriving the lane threshold from the
// workload's own cost estimates when the flag leaves it 0.
func selfServe(model *hmmm.Model, o opts, coalesce bool) (string, func(), error) {
	cfg := server.Config{
		Model: model,
		// Parallel per-video fan-out: the same ranking, but handlers
		// yield at the worker joins, so concurrent queries genuinely
		// interleave even on a single-core host — which is what gives
		// admission lanes and coalescing traffic to work with.
		Options: retrieval.Options{
			Beam: 4, TopK: 10,
			Parallel: 4, MinParallelWork: -1,
		},
		MaxInflight:  o.maxInflight,
		QueryTimeout: time.Duration(o.timeoutMS) * time.Millisecond,
	}
	if coalesce {
		cfg.Coalesce = true
		cfg.FastLaneCost = o.fastLaneCost
		if cfg.FastLaneCost <= 0 {
			c, err := autoFastLaneCost(model, o.heavyBeam)
			if err != nil {
				return "", nil, err
			}
			cfg.FastLaneCost = c
			fmt.Fprintf(os.Stderr, "hmmmload: auto fast-lane-cost %d\n", c)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// runCoord serves the workload through a real distributed deployment:
// the archive is split into o.coord shards, each served by its own
// internal/rpc TCP server, and the HTTP front end scatter-gathers
// through a coordinator. With -coord-fault, shard 0's server is killed
// a third of the way into the run and restarted on the same address at
// two thirds; queries through the window return committed partials
// (cost.degraded_shards > 0), never errors, and the report carries the
// measured degraded rate from the coordinator's own counters.
func runCoord(model *hmmm.Model, o opts) *report {
	base := retrieval.Options{Beam: 4, TopK: 10}
	shards, err := shard.Split(model, o.coord)
	if err != nil {
		log.Fatalf("splitting model: %v", err)
	}
	if len(shards) != o.coord {
		log.Fatalf("archive splits into %d shards, not the requested %d; lower -coord", len(shards), o.coord)
	}

	addrs := make([]string, o.coord)
	servers := make([]*rpc.Server, o.coord)
	svcs := make([]*rpc.ShardService, o.coord)
	for i, sh := range shards {
		svc, err := rpc.NewShardService(sh, i, o.coord, base, 1)
		if err != nil {
			log.Fatalf("shard %d service: %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("shard %d listen: %v", i, err)
		}
		srv := rpc.NewServer(svc, nil)
		go srv.Serve(ln)
		svcs[i], servers[i], addrs[i] = svc, srv, ln.Addr().String()
	}

	reg := obs.NewRegistry()
	co, err := coord.Dial(strings.Join(addrs, ";"), 2*time.Second, coord.Options{
		AttemptTimeout: 500 * time.Millisecond,
		Metrics:        coord.NewMetrics(reg),
	}, base)
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = co.WaitReady(ctx)
	cancel()
	if err != nil {
		log.Fatalf("waiting for shards: %v", err)
	}

	srv, err := server.New(server.Config{
		Model: model,
		Options: retrieval.Options{
			Beam: 4, TopK: 10, Parallel: 4, MinParallelWork: -1,
		},
		MaxInflight:  o.maxInflight,
		QueryTimeout: time.Duration(o.timeoutMS) * time.Millisecond,
		Registry:     reg,
		Coordinator:  co,
	})
	if err != nil {
		log.Fatalf("in-process server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	fmt.Fprintf(os.Stderr, "hmmmload: coordinating %d shards over %s\n",
		o.coord, strings.Join(addrs, " "))

	// The fault injector owns servers[0] for the whole run; the cleanup
	// below only reads it after faultWG.Wait().
	var faultWG sync.WaitGroup
	if o.coordFault {
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			victim := addrs[0]
			time.Sleep(o.duration / 3)
			servers[0].Close()
			fmt.Fprintf(os.Stderr, "hmmmload: FAULT shard 0 (%s) killed\n", victim)
			time.Sleep(o.duration / 3)
			var rln net.Listener
			var rerr error
			for attempt := 0; attempt < 20; attempt++ {
				if rln, rerr = net.Listen("tcp", victim); rerr == nil {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if rerr != nil {
				log.Printf("restarting shard 0 on %s: %v", victim, rerr)
				return
			}
			servers[0] = rpc.NewServer(svcs[0], nil)
			go servers[0].Serve(rln)
			fmt.Fprintf(os.Stderr, "hmmmload: shard 0 restarted on %s\n", victim)
		}()
	}

	rep := drive("http://"+ln.Addr().String(), o)
	rep.mode = fmt.Sprintf("coord-%d", o.coord)
	if rep.coordShards == 0 {
		// /api/stats was unreachable; keep the bench label honest.
		rep.coordShards = o.coord
	}

	faultWG.Wait()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(sctx)
	scancel()
	co.Close()
	for _, s := range servers {
		s.Close()
	}
	return rep
}

// ingestReport aggregates one live-ingest run: the accept latency (ack
// means journaled + already queryable), the freshness lag (submit until
// a video-scoped query first returns the new video), and the background
// prober's query latency — compaction runs off the query path, so a
// serving pause during a fold would surface as the prober's max.
type ingestReport struct {
	rate        float64
	elapsed     time.Duration
	submitted   int
	accepted    int
	rejected    int
	errors      int
	freshMisses int

	acceptLat []time.Duration
	freshLat  []time.Duration
	probeLat  []time.Duration

	compactions     uint64
	compactFailures uint64
	freshAtEnd      int
}

// ingestEvents is the rendered shot timeline of every submitted video:
// event-heavy so the classifier reliably auto-annotates (an all-"none"
// video would be rejected with 422).
var ingestEvents = []string{"goal", "goal_kick", "yellow_card"}

// runIngestLoad boots an in-process server with live ingest on (journal
// and compaction snapshot in a temp dir, so accept latency includes the
// fsync), offers videos open-loop at o.ingestRate, and probes the query
// path continuously while the delta folds every o.ingestCompactAfter
// accepts.
// fedReport summarizes one federated-query run.
type fedReport struct {
	domains []string
	elapsed time.Duration
	queries int
	errors  int
	matches int
	skips   int
	lat     []time.Duration // sorted by report time
}

func (r *fedReport) report(w *os.File) {
	sort.Slice(r.lat, func(i, j int) bool { return r.lat[i] < r.lat[j] })
	p50, p95, max := latSummary(r.lat)
	fmt.Fprintf(w, "hmmmload: federated over %s for %.1fs: %d queries, %d errors, %d merged matches, %d member skips\n",
		strings.Join(r.domains, ","), r.elapsed.Seconds(), r.queries, r.errors, r.matches, r.skips)
	fmt.Fprintf(w, "hmmmload:   merged-query latency p50 %s p95 %s max %s\n",
		p50.Round(time.Microsecond), p95.Round(time.Microsecond), max.Round(time.Microsecond))
}

func (r *fedReport) benchLine(w *os.File) {
	sort.Slice(r.lat, func(i, j int) bool { return r.lat[i] < r.lat[j] })
	p50, p95, max := latSummary(r.lat)
	mean := time.Duration(0)
	for _, l := range r.lat {
		mean += l
	}
	if len(r.lat) > 0 {
		mean /= time.Duration(len(r.lat))
	}
	fmt.Fprintf(w, "BenchmarkFederatedQuery/domains=%d %d %.0f ns/op %d p50-ns/op %d p95-ns/op %d max-ns/op %d matches %d member-skips %d errors\n",
		len(r.domains), r.queries, float64(mean), p50.Nanoseconds(), p95.Nanoseconds(), max.Nanoseconds(),
		r.matches, r.skips, r.errors)
}

// runFederated boots one generated model per requested domain behind a
// single in-process server (exactly how `hmmmd -domains` boots) and
// drives POST /api/query/federated closed-loop for the duration,
// rotating through per-domain two-step patterns so every query
// exercises the vocabulary-skip path on the other members.
func runFederated(o opts) *fedReport {
	names := strings.Split(o.federated, ",")
	var members []fed.Member
	var patterns []string
	var firstModel *hmmm.Model
	start := time.Now()
	for i, name := range names {
		name = strings.TrimSpace(name)
		d, ok := videomodel.DomainByName(name)
		if !ok {
			log.Fatalf("-federated: unknown domain %q (have %s)", name, strings.Join(videomodel.DomainNames(), ", "))
		}
		names[i] = d.Name
		archive, feats, err := synthvideo.GenerateArchive(synthvideo.ArchiveConfig{
			Seed: o.corpusSeed + uint64(i), Videos: o.videos, Shots: o.shots,
			Annotated: o.annotated, Domain: d,
		})
		if err != nil {
			log.Fatalf("-federated: generating %s corpus: %v", d.Name, err)
		}
		m, err := hmmm.Build(archive, feats, hmmm.BuildOptions{LearnP12: true, Domain: d})
		if err != nil {
			log.Fatalf("-federated: building %s model: %v", d.Name, err)
		}
		if firstModel == nil {
			firstModel = m
		}
		engine, err := retrieval.NewEngine(m, retrieval.Options{Beam: 4, TopK: 10})
		if err != nil {
			log.Fatalf("-federated: building %s engine: %v", d.Name, err)
		}
		members = append(members, fed.Member{
			Name: d.Name, Domain: d, States: m.NumStates(), Retriever: engine,
		})
		evs := d.AllEvents()
		patterns = append(patterns, fmt.Sprintf("%s -> %s", d.EventName(evs[0]), d.EventName(evs[1])))
	}
	federation, err := fed.New(members, fed.Options{TopK: 10})
	if err != nil {
		log.Fatalf("-federated: %v", err)
	}
	srv, err := server.New(server.Config{
		Model:        firstModel,
		Options:      retrieval.Options{Beam: 4, TopK: 10},
		QueryTimeout: time.Duration(o.timeoutMS) * time.Millisecond,
		Federation:   federation,
	})
	if err != nil {
		log.Fatalf("-federated: in-process server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()
	cl := &http.Client{Timeout: time.Duration(o.timeoutMS)*time.Millisecond + 5*time.Second}
	fmt.Fprintf(os.Stderr, "hmmmload: federation %s ready in %.1fs\n",
		strings.Join(names, ","), time.Since(start).Seconds())

	rep := &fedReport{domains: names}
	deadline := time.Now().Add(o.duration)
	runStart := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		body, _ := json.Marshal(api.FederatedQueryRequest{Pattern: patterns[i%len(patterns)], TopK: 10})
		qStart := time.Now()
		resp, err := cl.Post(url+"/api/query/federated", "application/json", strings.NewReader(string(body)))
		rep.queries++
		if err != nil {
			rep.errors++
			continue
		}
		var out api.FederatedQueryResponse
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			rep.errors++
			continue
		}
		rep.lat = append(rep.lat, time.Since(qStart))
		rep.matches += len(out.Matches)
		for _, mr := range out.Members {
			if mr.Skipped {
				rep.skips++
			}
		}
	}
	rep.elapsed = time.Since(runStart)

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(sctx)
	scancel()
	return rep
}

func runIngestLoad(model *hmmm.Model, corpus *dataset.Corpus, o opts) *ingestReport {
	tree, err := ingest.TrainClassifier(1, 12, mining.Config{})
	if err != nil {
		log.Fatalf("training ingest classifier: %v", err)
	}
	pipe, err := ingest.NewPipeline(shotdetect.DefaultConfig(), tree, 0.5)
	if err != nil {
		log.Fatalf("building ingest pipeline: %v", err)
	}
	dir, err := os.MkdirTemp("", "hmmmload-ingest-*")
	if err != nil {
		log.Fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{
		Model:        model,
		Options:      retrieval.Options{Beam: 4, TopK: 10},
		QueryTimeout: time.Duration(o.timeoutMS) * time.Millisecond,
		Live: &live.Config{
			LogPath:      filepath.Join(dir, "ingest.log"),
			SnapshotPath: filepath.Join(dir, "corpus.snapshot"),
			Archive:      corpus.Archive,
			Features:     corpus.Features,
			Pipeline:     pipe,
			Build:        hmmm.BuildOptions{LearnP12: true},
			CompactAfter: o.ingestCompactAfter,
		},
	})
	if err != nil {
		log.Fatalf("in-process server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()
	cl := &http.Client{Timeout: time.Duration(o.timeoutMS)*time.Millisecond + 5*time.Second}
	fmt.Fprintf(os.Stderr, "hmmmload: live ingest at %.1f videos/s, compact every %d, journal in %s\n",
		o.ingestRate, o.ingestCompactAfter, dir)

	rep := &ingestReport{rate: o.ingestRate}
	var mu sync.Mutex

	query := func(req api.QueryRequest) (*api.QueryResponse, error) {
		body, _ := json.Marshal(req)
		resp, err := cl.Post(url+"/api/query", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("query: status %d", resp.StatusCode)
		}
		var out api.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		return &out, nil
	}

	// Background prober: a cheap repeated query at a steady cadence for
	// the whole run. Its latency tail is the serving-pause measurement.
	probeStop := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-probeStop:
				return
			default:
			}
			start := time.Now()
			_, err := query(api.QueryRequest{Pattern: "goal", TopK: 10})
			lat := time.Since(start)
			mu.Lock()
			if err == nil {
				rep.probeLat = append(rep.probeLat, lat)
			} else {
				rep.errors++
			}
			mu.Unlock()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	submit := func(i int) {
		start := time.Now()
		body, _ := json.Marshal(api.IngestRequest{
			Name: fmt.Sprintf("load-%d", i), Seed: uint64(i + 1),
			Events: ingestEvents, ShotMS: 3000,
		})
		resp, err := cl.Post(url+"/api/ingest", "application/json", strings.NewReader(string(body)))
		if err != nil {
			mu.Lock()
			rep.errors++
			mu.Unlock()
			return
		}
		var ack api.IngestResponse
		decodeErr := json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		accept := time.Since(start)
		mu.Lock()
		switch {
		case resp.StatusCode == http.StatusOK && decodeErr == nil:
			rep.accepted++
			rep.acceptLat = append(rep.acceptLat, accept)
		case resp.StatusCode == http.StatusUnprocessableEntity:
			rep.rejected++
		default:
			rep.errors++
		}
		mu.Unlock()
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			return
		}
		// Freshness lag: poll a query scoped to the acked video until the
		// ranking contains it. The classifier chooses the labels, so cycle
		// the rendered events until one hits.
		pollDeadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(pollDeadline) {
			for _, ev := range ingestEvents {
				out, err := query(api.QueryRequest{Pattern: ev, ScopeVideo: ack.VideoID, TopK: 1})
				if err == nil && len(out.Matches) > 0 {
					mu.Lock()
					rep.freshLat = append(rep.freshLat, time.Since(start))
					mu.Unlock()
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		mu.Lock()
		rep.freshMisses++
		mu.Unlock()
	}

	interval := time.Duration(float64(time.Second) / o.ingestRate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(o.duration)
	start := time.Now()
	var wg sync.WaitGroup
	seq := 0
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			wg.Add(1)
			go func(i int) { defer wg.Done(); submit(i) }(seq)
			seq++
		}
	}
	wg.Wait()
	close(probeStop)
	probeWG.Wait()
	rep.submitted = seq
	rep.elapsed = time.Since(start)

	if stats := fetchStats(cl, url); stats != nil && stats.Ingest != nil {
		rep.compactions = stats.Ingest.Compactions
		rep.compactFailures = stats.Ingest.CompactFailures
		rep.freshAtEnd = stats.Ingest.FreshVideos
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(sctx)
	scancel()
	return rep
}

func latSummary(lat []time.Duration) (p50, p95, max time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	p50 = percentile(lat, 0.50)
	p95 = percentile(lat, 0.95)
	return p50, p95, lat[len(lat)-1]
}

func (r *ingestReport) report(w *os.File) {
	fmt.Fprintf(w, "hmmmload: ingest rate=%.1f/s for %.1fs: submitted %d, accepted %d, rejected %d, errors %d\n",
		r.rate, r.elapsed.Seconds(), r.submitted, r.accepted, r.rejected, r.errors)
	ap50, ap95, amax := latSummary(r.acceptLat)
	fmt.Fprintf(w, "hmmmload:   accept latency  p50 %s p95 %s max %s (ack = journaled + queryable)\n",
		ap50.Round(time.Microsecond), ap95.Round(time.Microsecond), amax.Round(time.Microsecond))
	fp50, fp95, fmax := latSummary(r.freshLat)
	fmt.Fprintf(w, "hmmmload:   freshness lag   p50 %s p95 %s max %s (%d misses)\n",
		fp50.Round(time.Microsecond), fp95.Round(time.Microsecond), fmax.Round(time.Microsecond), r.freshMisses)
	qp50, qp95, qmax := latSummary(r.probeLat)
	fmt.Fprintf(w, "hmmmload:   query prober    p50 %s p95 %s max %s over %d probes (compaction pause surfaces as max)\n",
		qp50.Round(time.Microsecond), qp95.Round(time.Microsecond), qmax.Round(time.Microsecond), len(r.probeLat))
	fmt.Fprintf(w, "hmmmload:   compactions %d (%d failed), %d fresh at end\n",
		r.compactions, r.compactFailures, r.freshAtEnd)
}

func (r *ingestReport) benchLine(w *os.File) {
	ap50, ap95, _ := latSummary(r.acceptLat)
	fp50, fp95, _ := latSummary(r.freshLat)
	_, _, qmax := latSummary(r.probeLat)
	qp99 := time.Duration(0)
	if len(r.probeLat) > 0 {
		qp99 = percentile(r.probeLat, 0.99)
	}
	mean := time.Duration(0)
	for _, l := range r.acceptLat {
		mean += l
	}
	if len(r.acceptLat) > 0 {
		mean /= time.Duration(len(r.acceptLat))
	}
	fmt.Fprintf(w, "BenchmarkIngest/rate=%g %d %.0f ns/op %d accept-p50-ns/op %d accept-p95-ns/op %d fresh-p50-ns/op %d fresh-p95-ns/op %d probe-p99-ns/op %d probe-max-ns/op %d compactions %d fresh-misses\n",
		r.rate, r.accepted, float64(mean), ap50.Nanoseconds(), ap95.Nanoseconds(),
		fp50.Nanoseconds(), fp95.Nanoseconds(), qp99.Nanoseconds(), qmax.Nanoseconds(),
		r.compactions, r.freshMisses)
}

// autoFastLaneCost places the lane threshold halfway between the most
// expensive cheap-pool estimate and the cheapest heavy-pool estimate,
// so the generator's own traffic classes provably split across lanes.
func autoFastLaneCost(model *hmmm.Model, heavyBeam int) (int, error) {
	cheapEng, err := retrieval.NewEngine(model, retrieval.Options{Beam: 4, TopK: 10, AnnotatedOnly: true})
	if err != nil {
		return 0, err
	}
	heavyEng, err := retrieval.NewEngine(model, retrieval.Options{Beam: heavyBeam, TopK: 10})
	if err != nil {
		return 0, err
	}
	estimate := func(eng *retrieval.Engine, pattern string) (int, error) {
		queries, err := matn.CompileString(pattern)
		if err != nil {
			return 0, err
		}
		total := 0
		for _, q := range queries {
			total += eng.EstimateCost(q)
		}
		return total, nil
	}
	maxCheap := 0
	for _, p := range cheapPool {
		c, err := estimate(cheapEng, p)
		if err != nil {
			return 0, err
		}
		if c > maxCheap {
			maxCheap = c
		}
	}
	minHeavy := int(^uint(0) >> 1)
	for _, p := range heavyPool {
		c, err := estimate(heavyEng, p)
		if err != nil {
			return 0, err
		}
		if c < minHeavy {
			minHeavy = c
		}
	}
	if minHeavy <= maxCheap {
		return maxCheap, nil
	}
	return maxCheap + (minHeavy-maxCheap)/2, nil
}

// sample is one finished request.
type sample struct {
	cheap   bool
	status  int // -1 on transport error
	latency time.Duration
}

// report aggregates one load run.
type report struct {
	mode     string
	offered  float64
	sent     int
	ok       int
	shed     int
	errors   int
	elapsed  time.Duration
	mean     time.Duration
	p50      time.Duration
	p95      time.Duration
	p99      time.Duration
	cheapP99 time.Duration

	coalesceRequests uint64
	coalesceHits     uint64
	coalesceHitRate  float64

	coordShards     int
	coordQueries    uint64
	degradedQueries uint64
	coordRetries    uint64
	coordEjections  uint64
}

// drive offers the mixed workload open-loop at o.qps for o.duration and
// aggregates the outcome, reading the server's coalesce counters from
// /api/stats afterwards.
func drive(url string, o opts) *report {
	rng := rand.New(rand.NewSource(o.seed))
	transport := &http.Transport{MaxIdleConnsPerHost: 256}
	cl := &http.Client{Transport: transport,
		Timeout: time.Duration(o.timeoutMS)*time.Millisecond + 5*time.Second}
	defer transport.CloseIdleConnections()

	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	fire := func(req api.QueryRequest, cheap bool) {
		defer wg.Done()
		body, _ := json.Marshal(req)
		start := time.Now()
		resp, err := cl.Post(url+"/api/query", "application/json", strings.NewReader(string(body)))
		s := sample{cheap: cheap, status: -1, latency: time.Since(start)}
		if err == nil {
			s.status = resp.StatusCode
			resp.Body.Close()
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	// Arrivals come in bursts of o.burst requests: real query traffic is
	// bursty (cache expiry, page loads, fan-out backends), and bursts are
	// what admission control and coalescing exist for. burst=1 degrades
	// to smooth open-loop arrivals.
	burst := o.burst
	if burst < 1 {
		burst = 1
	}
	interval := time.Duration(float64(burst) * float64(time.Second) / o.qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(o.duration)
	start := time.Now()
	sent := 0
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			for b := 0; b < burst; b++ {
				req := api.QueryRequest{TimeoutMS: o.timeoutMS}
				cheap := true
				switch {
				case rng.Float64() < o.heavy:
					cheap = false
					req.Pattern = heavyPool[rng.Intn(len(heavyPool))]
					req.SimilarShots = true
					req.Beam = o.heavyBeam
				case rng.Float64() < o.repeat:
					req.Pattern = cheapPool[rng.Intn(len(cheapPool))]
				default:
					// Unique: a per-request scope bound far past every
					// shot start keeps the ranking identical while
					// defeating coalescing, like real one-off queries do.
					req.Pattern = cheapPool[rng.Intn(len(cheapPool))]
					req.ScopeToMS = 100_000_000 + sent
				}
				sent++
				wg.Add(1)
				go fire(req, cheap)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{mode: "on", offered: o.qps, sent: sent, elapsed: elapsed}
	var okLat, cheapLat []time.Duration
	var sum time.Duration
	for _, s := range samples {
		switch {
		case s.status == http.StatusOK:
			rep.ok++
			okLat = append(okLat, s.latency)
			sum += s.latency
			if s.cheap {
				cheapLat = append(cheapLat, s.latency)
			}
		case s.status == http.StatusServiceUnavailable:
			rep.shed++
		default:
			rep.errors++
		}
	}
	if rep.ok > 0 {
		rep.mean = sum / time.Duration(rep.ok)
		rep.p50 = percentile(okLat, 0.50)
		rep.p95 = percentile(okLat, 0.95)
		rep.p99 = percentile(okLat, 0.99)
	}
	if len(cheapLat) > 0 {
		rep.cheapP99 = percentile(cheapLat, 0.99)
	}

	if stats := fetchStats(cl, url); stats != nil {
		if stats.Runtime != nil {
			rep.coalesceRequests = stats.Runtime.CoalesceRequests
			rep.coalesceHits = stats.Runtime.CoalesceHits
			rep.coalesceHitRate = stats.Runtime.CoalesceHitRate
		}
		if stats.Coord != nil {
			rep.coordShards = stats.Coord.Shards
			rep.coordQueries = stats.Coord.Queries
			rep.degradedQueries = stats.Coord.DegradedQueries
			rep.coordRetries = stats.Coord.Retries
			rep.coordEjections = stats.Coord.Ejections
		}
	}
	return rep
}

func fetchStats(cl *http.Client, url string) *api.StatsResponse {
	resp, err := cl.Get(url + "/api/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if json.NewDecoder(resp.Body).Decode(&stats) != nil {
		return nil
	}
	return &stats
}

// percentile returns the p-quantile of latencies (sorted in place).
func percentile(lat []time.Duration, p float64) time.Duration {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(p * float64(len(lat)-1))
	return lat[idx]
}

func (r *report) goodput() float64 {
	return float64(r.ok) / r.elapsed.Seconds()
}

func (r *report) shedRate() float64 {
	if r.sent == 0 {
		return 0
	}
	return float64(r.shed) / float64(r.sent)
}

// degradedRate is the fraction of coordinated queries that committed a
// partial (some shard unreachable through retries and failover).
func (r *report) degradedRate() float64 {
	if r.coordQueries == 0 {
		return 0
	}
	return float64(r.degradedQueries) / float64(r.coordQueries)
}

// label names the run for the human report and the bench line: the
// coalesce on/off axis for single-engine runs, the shard count for
// coordinated ones.
func (r *report) label() string {
	if r.coordShards > 0 {
		return fmt.Sprintf("coord=%d", r.coordShards)
	}
	return "coalesce=" + r.mode
}

func (r *report) report(w *os.File) {
	fmt.Fprintf(w, "hmmmload: %s offered %.0f qps for %.1fs: sent %d, ok %d (goodput %.1f qps), shed %d (%.1f%%), errors %d\n",
		r.label(), r.offered, r.elapsed.Seconds(), r.sent, r.ok, r.goodput(), r.shed, 100*r.shedRate(), r.errors)
	fmt.Fprintf(w, "hmmmload:   latency mean %s p50 %s p95 %s p99 %s (cheap p99 %s)\n",
		r.mean.Round(time.Microsecond), r.p50.Round(time.Microsecond),
		r.p95.Round(time.Microsecond), r.p99.Round(time.Microsecond),
		r.cheapP99.Round(time.Microsecond))
	fmt.Fprintf(w, "hmmmload:   coalesce: %d requests, %d hits (rate %.2f)\n",
		r.coalesceRequests, r.coalesceHits, r.coalesceHitRate)
	if r.coordShards > 0 {
		fmt.Fprintf(w, "hmmmload:   coord: %d shards, %d queries, %d degraded (rate %.4f), %d retries, %d ejections\n",
			r.coordShards, r.coordQueries, r.degradedQueries, r.degradedRate(),
			r.coordRetries, r.coordEjections)
	}
}

// benchLine renders the run as one `go test -bench`-style line so
// cmd/benchjson can append it to a trajectory file. ns/op is the mean
// successful-query latency; the custom units land in the entry's Extra
// map.
func (r *report) benchLine(w *os.File) {
	if r.coordShards > 0 {
		fmt.Fprintf(w, "BenchmarkServing/%s %d %.0f ns/op %d p50-ns/op %d p95-ns/op %d p99-ns/op %.2f goodput-qps %.2f offered-qps %.4f shed-rate %.4f degraded-rate %d degraded-queries %d coord-retries\n",
			r.label(), r.sent, float64(r.mean), r.p50.Nanoseconds(), r.p95.Nanoseconds(),
			r.p99.Nanoseconds(), r.goodput(), r.offered, r.shedRate(),
			r.degradedRate(), r.degradedQueries, r.coordRetries)
		return
	}
	fmt.Fprintf(w, "BenchmarkServing/%s %d %.0f ns/op %d p50-ns/op %d p95-ns/op %d p99-ns/op %d cheap-p99-ns/op %.2f goodput-qps %.2f offered-qps %.4f shed-rate %.4f coalesce-hit-rate\n",
		r.label(), r.sent, float64(r.mean), r.p50.Nanoseconds(), r.p95.Nanoseconds(),
		r.p99.Nanoseconds(), r.cheapP99.Nanoseconds(), r.goodput(), r.offered,
		r.shedRate(), r.coalesceHitRate)
}

// Command hmmmd serves the HMMM retrieval API over HTTP: the server side
// of the paper's Figure-5 client/server retrieval system.
//
// Usage:
//
//	hmmmd [flags]
//
//	-model     string  load a model snapshot written by hmmm-gen;
//	                   empty generates a fresh corpus in memory
//	-addr      string  listen address (default :8077)
//	-seed      uint    seed for the in-memory corpus (default 1)
//	-videos    int     in-memory corpus videos (default 54)
//	-shots     int     in-memory corpus shots (default 11567)
//	-annotated int     in-memory corpus annotated shots (default 506)
//	-retrain   int     feedback count that triggers auto retraining
//	                   (default 10; 0 disables)
//	-feedback-log string  persist the feedback log across restarts
//	-shards    int     serve queries by scatter-gather over at most this
//	                   many by-video shards; rankings are bit-identical
//	                   to unsharded serving, and retrains re-split
//	                   before publishing (default 0 = unsharded)
//	-coarse-candidates int  two-stage retrieval: prefilter each query to
//	                   at most this many candidate videos per pattern
//	                   step with the coarse index before the exact
//	                   lattice (DESIGN.md §5f). 0 (the default) serves
//	                   exact-only, bit-identical to prior releases; with
//	                   -shards the budget applies per shard
//
// Domain and federation flags (DESIGN.md §5j):
//
//	-domain  string   event vocabulary of the served archive (soccer,
//	                  basketball, news). In generated-corpus mode the
//	                  corpus is sampled from the domain's timeline
//	                  grammar; with -model the loaded snapshot must be
//	                  stamped with this domain. Empty = soccer / accept
//	                  the model's own stamp
//	-domains string   additionally serve POST /api/query/federated: a
//	                  comma-separated list of domains, each backed by its
//	                  own generated archive and model, queried together
//	                  and merged into one cross-domain ranking
//	                  (hmmmctl query "..." -domains all)
//
// Distributed serving flags (DESIGN.md §5h):
//
//	-coord      string    serve /api/query by scatter-gather over remote
//	                      shard servers (cmd/hmmm-shardd): ';' separates
//	                      shards, ',' separates replica addresses of one
//	                      shard ("h1:8090;h2:8090,h2b:8090"). The local
//	                      model (same -model or -seed flags as the shard
//	                      servers) still serves browse and Explain.
//	                      Mutually exclusive with -shards
//	-coord-wait duration  how long to wait at startup for every shard to
//	                      report READY with the expected identity
//	                      (default 30s; 0 skips the check)
//
// Live ingest flags (DESIGN.md §5i):
//
//	-ingest            bool      accept new videos at runtime via POST
//	                             /api/ingest: journaled durably, served
//	                             immediately from a delta sub-model, and
//	                             folded into full rebuilds by background
//	                             compaction. Requires the corpus, so it
//	                             runs in generated-corpus mode (no
//	                             -model) or resumes from a compacted
//	                             -ingest-snapshot. Mutually exclusive
//	                             with -coord
//	-ingest-log        string    crash-safe ingest journal path; replayed
//	                             at startup so every acknowledged video
//	                             survives a crash (empty = memory only)
//	-ingest-snapshot   string    persist the merged corpus here at each
//	                             compaction (and resume from it at boot);
//	                             only with it set may compaction truncate
//	                             the journal
//	-compact-after     int       fold the delta into a full rebuild once
//	                             it holds this many videos (default 8;
//	                             0 disables the size trigger)
//	-compact-age       duration  fold once the oldest delta video is this
//	                             old, checked at accept time (default 0 =
//	                             disabled)
//
// Resilience flags:
//
//	-query-timeout  duration  per-query deadline; expired queries return
//	                          their partial ranking with cost.truncated
//	                          set (default 10s; 0 disables)
//	-max-inflight   int       admission-control ceiling; excess requests
//	                          are shed with 503 + Retry-After
//	                          (default 64; 0 disables)
//	-coalesce       bool      deduplicate identical in-flight queries:
//	                          requests with the same canonical pattern,
//	                          result-affecting options, deadline budget,
//	                          and model generation share one retrieval
//	                          and are answered bit-identically
//	                          (default true)
//	-fast-lane-cost int       two-lane query admission: queries whose
//	                          estimated lattice cost is at or under this
//	                          take the fast lane; costlier ones take the
//	                          bounded heavy lane, whose queue sheds with
//	                          503 before a queued deadline could expire
//	                          (default 1000; 0 restores the single
//	                          MaxInflight semaphore)
//	-heavy-queue    int       heavy-lane wait-queue bound
//	                          (default 64)
//	-max-body       int       request body cap in bytes
//	                          (default 1 MiB; -1 disables)
//	-shutdown-grace duration  how long SIGINT/SIGTERM waits for in-flight
//	                          requests before exiting (default 10s)
//
// Observability flags:
//
//	-debug-addr duration  serve pprof, expvar, and a /metrics mirror on a
//	                      second listener (default off; keep it off the
//	                      production port — the endpoints are
//	                      unauthenticated)
//	-slow-query duration  log queries taking at least this long as JSON
//	                      lines on stderr (default 0 = disabled)
//
// The main listener always serves Prometheus metrics at /metrics and the
// operational roll-up inside GET /api/stats ("runtime" section; also
// `hmmmctl stats`).
//
// On SIGINT/SIGTERM the daemon flips /api/health to 503 "draining",
// waits up to -shutdown-grace for in-flight requests, persists the
// feedback log a final time, and exits.
package main

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/videodb/hmmm/internal/coord"
	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/fed"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/ingest"
	"github.com/videodb/hmmm/internal/live"
	"github.com/videodb/hmmm/internal/mining"
	"github.com/videodb/hmmm/internal/obs"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/server"
	"github.com/videodb/hmmm/internal/shotdetect"
	"github.com/videodb/hmmm/internal/store"
	"github.com/videodb/hmmm/internal/synthvideo"
	"github.com/videodb/hmmm/internal/videomodel"
)

// fileExists reports whether path (or any member of its atomic-write
// recovery chain) is present, deciding between "resume from snapshot"
// and "first boot" for -ingest-snapshot.
func fileExists(path string) bool {
	for _, p := range []string{path, path + ".tmp", path + ".bak"} {
		if _, err := os.Stat(p); err == nil {
			return true
		}
	}
	return false
}

// orMemory renders an optional path flag for the startup banner.
func orMemory(path string) string {
	if path == "" {
		return "(memory)"
	}
	return path
}

// processSeed returns a per-process seed for the coordinator's
// retry/backoff jitter. A fleet of coordinators sharing the library's
// fixed default seed would draw identical jitter sequences and re-arrive
// in lockstep — exactly the synchronization the jitter exists to break.
func processSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if s := binary.LittleEndian.Uint64(b[:]); s != 0 {
			return s
		}
	}
	return uint64(os.Getpid()) ^ uint64(time.Now().UnixNano())
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmmd: ")

	var (
		modelPath = flag.String("model", "", "model snapshot to serve (empty = generate)")
		addr      = flag.String("addr", ":8077", "listen address")
		seed      = flag.Uint64("seed", 1, "seed for the generated corpus")
		videos    = flag.Int("videos", 54, "generated corpus videos")
		shots     = flag.Int("shots", 11567, "generated corpus shots")
		annotated = flag.Int("annotated", 506, "generated corpus annotated shots")
		retrain   = flag.Int("retrain", 10, "feedback threshold for auto retraining (0 disables)")
		fbLog     = flag.String("feedback-log", "", "persist the feedback log to this path")
		shards    = flag.Int("shards", 0, "scatter-gather shard count (0 = unsharded)")
		coarse    = flag.Int("coarse-candidates", 0, "coarse prefilter budget per query step (0 = exact-only)")

		domainName  = flag.String("domain", "", "event vocabulary of the served archive: generate the corpus from it, or require a loaded -model to be stamped with it (empty = soccer / accept the model's own stamp)")
		domainsSpec = flag.String("domains", "", "additionally serve POST /api/query/federated over a federation of per-domain generated archives (comma-separated domain names, e.g. soccer,basketball,news)")

		coordSpec = flag.String("coord", "", "remote shard servers to coordinate over (';' shards, ',' replicas; empty = local serving)")
		coordWait = flag.Duration("coord-wait", 30*time.Second, "startup wait for every remote shard to report READY (0 skips)")

		ingestOn     = flag.Bool("ingest", false, "accept new videos at runtime via POST /api/ingest")
		ingestLog    = flag.String("ingest-log", "", "crash-safe ingest journal path (empty = memory only)")
		ingestSnap   = flag.String("ingest-snapshot", "", "persist the merged corpus here at each compaction; resume from it at boot")
		compactAfter = flag.Int("compact-after", 8, "fold the delta into a full rebuild once it holds this many videos (0 disables)")
		compactAge   = flag.Duration("compact-age", 0, "fold once the oldest delta video is this old, checked at accept time (0 disables)")

		queryTimeout = flag.Duration("query-timeout", 10*time.Second, "per-query deadline (0 disables)")
		maxInflight  = flag.Int("max-inflight", 64, "max concurrently served requests (0 disables shedding)")
		coalesceQ    = flag.Bool("coalesce", true, "deduplicate identical in-flight queries")
		fastLaneCost = flag.Int("fast-lane-cost", 1000, "estimated-cost threshold for the fast admission lane (0 = single semaphore)")
		heavyQueue   = flag.Int("heavy-queue", server.DefaultHeavyQueue, "heavy-lane wait-queue bound")
		maxBody      = flag.Int64("max-body", server.DefaultMaxRequestBytes, "request body cap in bytes (-1 disables)")
		grace        = flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown drain window")

		debugAddr = flag.String("debug-addr", "", "serve pprof/expvar/metrics on this second listener (empty disables)")
		slowQuery = flag.Duration("slow-query", 0, "log queries taking at least this long to stderr as JSON lines (0 disables)")
	)
	flag.Parse()

	// The registry exists before the model loads so the store's
	// recovery-chain counters cover the boot load itself.
	reg := obs.NewRegistry()
	store.SetMetrics(store.NewMetrics(reg))

	domain, ok := videomodel.DomainByName(*domainName)
	if !ok {
		log.Fatalf("unknown -domain %q (have %s)", *domainName, strings.Join(videomodel.DomainNames(), ", "))
	}

	buildOpts := hmmm.BuildOptions{LearnP12: true, Domain: domain}
	var model *hmmm.Model
	var corpus *dataset.Corpus
	switch {
	case *ingestOn && *ingestSnap != "" && fileExists(*ingestSnap):
		// Resume from the last compaction's merged corpus: the journal
		// replay then skips everything the snapshot already folded.
		c, from, err := store.LoadCorpusRecover(*ingestSnap)
		if err != nil {
			log.Fatalf("loading ingest snapshot: %v", err)
		}
		if from != *ingestSnap {
			log.Printf("WARNING: ingest snapshot %s unreadable; recovered from %s", *ingestSnap, from)
		}
		corpus = c
		model, err = hmmm.Build(corpus.Archive, corpus.Features, buildOpts)
		if err != nil {
			log.Fatalf("rebuilding model from ingest snapshot: %v", err)
		}
		fmt.Printf("resumed compacted corpus from %s: %d states across %d videos\n",
			from, model.NumStates(), model.NumVideos())
	case *modelPath != "":
		var err error
		var from string
		model, from, err = store.LoadModelRecover(*modelPath)
		if err != nil {
			log.Fatalf("loading model: %v", err)
		}
		if from != *modelPath {
			log.Printf("WARNING: model %s unreadable; recovered from %s", *modelPath, from)
		}
		if *domainName != "" && model.DomainName() != domain.Name {
			log.Fatalf("model %s: %v: stamped %q, want %q", from, store.ErrDomainMismatch, model.DomainName(), domain.Name)
		}
		fmt.Printf("loaded model from %s (%s domain): %d states across %d videos\n",
			from, model.DomainName(), model.NumStates(), model.NumVideos())
	case domain.Name != "soccer":
		// Non-soccer domains have no media render/classification pipeline;
		// the corpus is sampled directly from the domain's timeline grammar
		// and per-event feature statistics.
		start := time.Now()
		archive, feats, err := synthvideo.GenerateArchive(synthvideo.ArchiveConfig{
			Seed: *seed, Videos: *videos, Shots: *shots, Annotated: *annotated, Domain: domain,
		})
		if err != nil {
			log.Fatalf("generating %s corpus: %v", domain.Name, err)
		}
		model, err = hmmm.Build(archive, feats, buildOpts)
		if err != nil {
			log.Fatalf("building %s model: %v", domain.Name, err)
		}
		fmt.Printf("generated %s corpus and model in %.1fs: %d states across %d videos\n",
			domain.Name, time.Since(start).Seconds(), model.NumStates(), model.NumVideos())
	default:
		start := time.Now()
		var err error
		corpus, err = dataset.Build(dataset.Config{
			Seed: *seed, Videos: *videos, Shots: *shots, Annotated: *annotated, Fast: true,
		})
		if err != nil {
			log.Fatalf("building corpus: %v", err)
		}
		model, err = hmmm.Build(corpus.Archive, corpus.Features, buildOpts)
		if err != nil {
			log.Fatalf("building model: %v", err)
		}
		fmt.Printf("generated corpus and model in %.1fs: %d states across %d videos\n",
			time.Since(start).Seconds(), model.NumStates(), model.NumVideos())
	}

	var liveCfg *live.Config
	if *ingestOn {
		if *coordSpec != "" {
			log.Fatalf("-ingest and -coord are mutually exclusive: the coordinator owns no model to extend; ingest on the shard servers")
		}
		if model.DomainName() != "soccer" {
			log.Fatalf("-ingest requires the soccer domain: the ingest classifier is trained on the soccer media pipeline (model domain is %s)", model.DomainName())
		}
		if corpus == nil {
			log.Fatalf("live ingest needs the corpus the model was built from: run in generated-corpus mode (no -model) or point -ingest-snapshot at a compacted corpus snapshot")
		}
		start := time.Now()
		tree, err := ingest.TrainClassifier(1, 12, mining.Config{})
		if err != nil {
			log.Fatalf("training ingest classifier: %v", err)
		}
		pipe, err := ingest.NewPipeline(shotdetect.DefaultConfig(), tree, 0.5)
		if err != nil {
			log.Fatalf("building ingest pipeline: %v", err)
		}
		liveCfg = &live.Config{
			LogPath:      *ingestLog,
			Archive:      corpus.Archive,
			Features:     corpus.Features,
			Pipeline:     pipe,
			Build:        buildOpts,
			CompactAfter: *compactAfter,
			CompactAge:   *compactAge,
			SnapshotPath: *ingestSnap,
		}
		fmt.Printf("live ingest on: classifier trained in %.1fs, journal=%s snapshot=%s compact-after=%d\n",
			time.Since(start).Seconds(), orMemory(*ingestLog), orMemory(*ingestSnap), *compactAfter)
	}

	var coordinator *coord.Coordinator
	if *coordSpec != "" {
		if *shards > 0 {
			log.Fatalf("-coord and -shards are mutually exclusive")
		}
		var err error
		coordinator, err = coord.Dial(*coordSpec, 2*time.Second,
			coord.Options{Metrics: coord.NewMetrics(reg), Seed: processSeed()},
			retrieval.Options{Beam: 4, TopK: 10, CoarseCandidates: *coarse})
		if err != nil {
			log.Fatalf("coordinator: %v", err)
		}
		if *coordWait > 0 {
			wctx, cancel := context.WithTimeout(context.Background(), *coordWait)
			err := coordinator.WaitReady(wctx)
			cancel()
			if err != nil {
				log.Fatalf("waiting for remote shards: %v", err)
			}
		}
		fmt.Printf("coordinating %d remote shards (%s)\n", coordinator.NumShards(), *coordSpec)
	}

	var federation *fed.Federation
	if *domainsSpec != "" {
		start := time.Now()
		var members []fed.Member
		for i, name := range strings.Split(*domainsSpec, ",") {
			name = strings.TrimSpace(name)
			d, ok := videomodel.DomainByName(name)
			if !ok {
				log.Fatalf("-domains: unknown domain %q (have %s)", name, strings.Join(videomodel.DomainNames(), ", "))
			}
			archive, feats, err := synthvideo.GenerateArchive(synthvideo.ArchiveConfig{
				Seed: *seed + uint64(i), Videos: *videos, Shots: *shots, Annotated: *annotated, Domain: d,
			})
			if err != nil {
				log.Fatalf("-domains: generating %s corpus: %v", d.Name, err)
			}
			m, err := hmmm.Build(archive, feats, hmmm.BuildOptions{LearnP12: true, Domain: d})
			if err != nil {
				log.Fatalf("-domains: building %s model: %v", d.Name, err)
			}
			engine, err := retrieval.NewEngine(m, retrieval.Options{Beam: 4, TopK: 10, CoarseCandidates: *coarse})
			if err != nil {
				log.Fatalf("-domains: building %s engine: %v", d.Name, err)
			}
			members = append(members, fed.Member{
				Name: d.Name, Domain: d, States: m.NumStates(), Retriever: engine,
			})
		}
		var err error
		federation, err = fed.New(members, fed.Options{TopK: 10})
		if err != nil {
			log.Fatalf("-domains: %v", err)
		}
		fmt.Printf("federation ready in %.1fs: %s\n",
			time.Since(start).Seconds(), strings.Join(federation.Names(), ", "))
	}

	var slowWriter io.Writer
	if *slowQuery > 0 {
		slowWriter = os.Stderr
	}
	srv, err := server.New(server.Config{
		Model:              model,
		Options:            retrieval.Options{Beam: 4, TopK: 10, CoarseCandidates: *coarse},
		RetrainThreshold:   *retrain,
		FeedbackLogPath:    *fbLog,
		Shards:             *shards,
		Coordinator:        coordinator,
		Live:               liveCfg,
		Federation:         federation,
		QueryTimeout:       *queryTimeout,
		MaxInflight:        *maxInflight,
		Coalesce:           *coalesceQ,
		FastLaneCost:       *fastLaneCost,
		HeavyQueue:         *heavyQueue,
		MaxRequestBytes:    *maxBody,
		Registry:           reg,
		SlowQueryThreshold: *slowQuery,
		SlowQueryWriter:    slowWriter,
	})
	if err != nil {
		log.Fatalf("starting server: %v", err)
	}
	if n := srv.NumShards(); n > 0 {
		fmt.Printf("sharded serving: %d shards\n", n)
	}
	if *coarse > 0 {
		fmt.Printf("two-stage retrieval: coarse prefilter keeps <= %d candidate videos per query step\n", *coarse)
	}
	if *coalesceQ {
		fmt.Printf("request coalescing on: identical in-flight queries share one retrieval\n")
	}
	if *fastLaneCost > 0 {
		fmt.Printf("two-lane admission: fast lane at estimated cost <= %d, heavy queue bound %d\n",
			*fastLaneCost, *heavyQueue)
	}

	if *debugAddr != "" {
		// pprof and expvar stay off the production listener: they are
		// unauthenticated and can be expensive to serve.
		ds := &http.Server{Addr: *debugAddr, Handler: obs.DebugHandler(reg)}
		go func() {
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		fmt.Printf("debug endpoints (pprof, expvar, metrics) on %s\n", *debugAddr)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("listening on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining for up to %v", *grace)
		if err := srv.Shutdown(hs, *grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("shutdown: %v", err)
		}
		if coordinator != nil {
			coordinator.Close()
		}
		log.Printf("drained and persisted; bye")
	}
}

// Command hmmmd serves the HMMM retrieval API over HTTP: the server side
// of the paper's Figure-5 client/server retrieval system.
//
// Usage:
//
//	hmmmd [flags]
//
//	-model     string  load a model snapshot written by hmmm-gen;
//	                   empty generates a fresh corpus in memory
//	-addr      string  listen address (default :8077)
//	-seed      uint    seed for the in-memory corpus (default 1)
//	-videos    int     in-memory corpus videos (default 54)
//	-shots     int     in-memory corpus shots (default 11567)
//	-annotated int     in-memory corpus annotated shots (default 506)
//	-retrain   int     feedback count that triggers auto retraining
//	                   (default 10; 0 disables)
//	-feedback-log string  persist the feedback log across restarts
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/videodb/hmmm/internal/dataset"
	"github.com/videodb/hmmm/internal/hmmm"
	"github.com/videodb/hmmm/internal/retrieval"
	"github.com/videodb/hmmm/internal/server"
	"github.com/videodb/hmmm/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmmd: ")

	var (
		modelPath = flag.String("model", "", "model snapshot to serve (empty = generate)")
		addr      = flag.String("addr", ":8077", "listen address")
		seed      = flag.Uint64("seed", 1, "seed for the generated corpus")
		videos    = flag.Int("videos", 54, "generated corpus videos")
		shots     = flag.Int("shots", 11567, "generated corpus shots")
		annotated = flag.Int("annotated", 506, "generated corpus annotated shots")
		retrain   = flag.Int("retrain", 10, "feedback threshold for auto retraining (0 disables)")
		fbLog     = flag.String("feedback-log", "", "persist the feedback log to this path")
	)
	flag.Parse()

	var model *hmmm.Model
	if *modelPath != "" {
		var err error
		model, err = store.LoadModel(*modelPath)
		if err != nil {
			log.Fatalf("loading model: %v", err)
		}
		fmt.Printf("loaded model from %s: %d states across %d videos\n",
			*modelPath, model.NumStates(), model.NumVideos())
	} else {
		start := time.Now()
		corpus, err := dataset.Build(dataset.Config{
			Seed: *seed, Videos: *videos, Shots: *shots, Annotated: *annotated, Fast: true,
		})
		if err != nil {
			log.Fatalf("building corpus: %v", err)
		}
		model, err = hmmm.Build(corpus.Archive, corpus.Features, hmmm.BuildOptions{LearnP12: true})
		if err != nil {
			log.Fatalf("building model: %v", err)
		}
		fmt.Printf("generated corpus and model in %.1fs: %d states across %d videos\n",
			time.Since(start).Seconds(), model.NumStates(), model.NumVideos())
	}

	srv, err := server.New(server.Config{
		Model:            model,
		Options:          retrieval.Options{Beam: 4, TopK: 10},
		RetrainThreshold: *retrain,
		FeedbackLogPath:  *fbLog,
	})
	if err != nil {
		log.Fatalf("starting server: %v", err)
	}
	fmt.Printf("listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}

// Command benchjson converts `go test -bench` output on stdin into a JSON
// map keyed by benchmark name. The raw lines are echoed to stderr so the
// run stays observable while the machine-readable file is captured:
//
//	go test -run '^$' -bench 'BenchmarkF2.*' -benchmem . | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkF2RetrievalGreedy-8   200   31415 ns/op   2048 B/op   12 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		e := Entry{Iterations: iters}
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			e.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		out[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

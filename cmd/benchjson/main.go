// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable benchmark record and maintains a trajectory of runs:
// each invocation appends one record — run metadata plus the parsed
// measurements — to the -out file instead of overwriting it, so
// regressions stay diagnosable across commits. The raw lines are echoed
// to stderr so the run stays observable while the file is captured:
//
//	go test -run '^$' -bench 'BenchmarkF2.*' -benchmem . | benchjson -out BENCH.json
//
// Without -out the single record is written to stdout. Custom metrics
// emitted via b.ReportMetric (e.g. "p99-ns/op") are preserved under the
// entry's "extra" map. A pre-trajectory -out file holding a bare
// name→entry map is converted to a one-record trajectory on first
// append.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark measurement.
type Entry struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units, keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Meta identifies the environment of one benchmark run. GOMAXPROCS and
// NumCPU matter most here: the parallel build/retrieval numbers are only
// comparable between runs with the same effective core budget.
type Meta struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitSHA     string `json:"git_sha,omitempty"`
	Note       string `json:"note,omitempty"`
}

// Record is one run: its environment and its measurements.
type Record struct {
	Meta       Meta             `json:"meta"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "trajectory file to append this run's record to (stdout if empty)")
	note := flag.String("note", "", "free-form note stored in the record's metadata")
	flag.Parse()

	rec := Record{Meta: collectMeta(*note), Benchmarks: make(map[string]Entry)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if name, e, ok := parseBenchLine(line); ok {
			rec.Benchmarks[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fatal(err)
		}
		return
	}
	trajectory, err := loadTrajectory(*out)
	if err != nil {
		fatal(err)
	}
	trajectory = append(trajectory, rec)
	buf, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended record %d to %s\n", len(trajectory), *out)
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/w=4-8  200  31415 ns/op  99 p99-ns/op  2048 B/op  12 allocs/op
//
// into its entry. Unknown units land in Extra, which is how
// b.ReportMetric values survive.
func parseBenchLine(line string) (string, Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Entry{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS tag go test appends to the name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return "", Entry{}, false
	}
	e := Entry{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp, seen = v, true
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Extra == nil {
				e.Extra = make(map[string]float64)
			}
			e.Extra[unit] = v
		}
	}
	return name, e, seen
}

// collectMeta gathers the run environment. The git SHA is best-effort:
// benchmarks may run from an exported tree.
func collectMeta(note string) Meta {
	m := Meta{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       note,
	}
	if sha, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.GitSHA = strings.TrimSpace(string(sha))
	}
	return m
}

// preMetadataNote tags trajectory records that predate run metadata, so
// downstream tooling can tell "environment unknown" apart from a record
// whose collection merely failed.
const preMetadataNote = "pre-metadata"

// loadTrajectory reads an existing -out file: a record array, or the
// legacy bare name→entry map which becomes a single record. A missing
// file is an empty trajectory. Records without metadata — the legacy
// map, or array records written before Meta existed — are tagged with
// the pre-metadata note.
func loadTrajectory(path string) ([]Record, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var trajectory []Record
	if err := json.Unmarshal(buf, &trajectory); err == nil {
		return tagLegacy(trajectory), nil
	}
	var legacy map[string]Entry
	if err := json.Unmarshal(buf, &legacy); err == nil {
		return tagLegacy([]Record{{Benchmarks: legacy}}), nil
	}
	return nil, fmt.Errorf("%s: neither a record array nor a legacy benchmark map", path)
}

// tagLegacy marks metadata-less records (no date, no CPU count) with the
// pre-metadata note, leaving annotated records untouched.
func tagLegacy(trajectory []Record) []Record {
	for i := range trajectory {
		m := &trajectory[i].Meta
		if m.Date == "" && m.NumCPU == 0 && m.Note == "" {
			m.Note = preMetadataNote
		}
	}
	return trajectory
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

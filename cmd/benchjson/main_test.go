package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, e, ok := parseBenchLine(
		"BenchmarkQueryUnderRetrain/during-retrain-8   200   31415 ns/op   99000 p99-ns/op   2048 B/op   12 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkQueryUnderRetrain/during-retrain" {
		t.Errorf("name = %q", name)
	}
	if e.Iterations != 200 || e.NsPerOp != 31415 || e.BytesPerOp != 2048 || e.AllocsPerOp != 12 {
		t.Errorf("entry = %+v", e)
	}
	if e.Extra["p99-ns/op"] != 99000 {
		t.Errorf("extra = %v, want p99-ns/op=99000", e.Extra)
	}

	if _, _, ok := parseBenchLine("ok  \tgithub.com/videodb/hmmm\t2.1s"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, _, ok := parseBenchLine("BenchmarkNoResult-8   200"); ok {
		t.Error("line without ns/op accepted")
	}
	// Sub-benchmark names keep their /suffix but lose only the -P tag.
	name, _, ok = parseBenchLine("BenchmarkBuildPaperScale/workers=4-16  10  123.5 ns/op")
	if !ok || name != "BenchmarkBuildPaperScale/workers=4" {
		t.Errorf("name = %q, ok = %v", name, ok)
	}
}

func TestTrajectoryAppendAndLegacyConversion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")

	// Legacy format: bare name -> entry map.
	legacy := map[string]Entry{"BenchmarkOld": {Iterations: 5, NsPerOp: 100}}
	buf, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	trajectory, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(trajectory) != 1 || trajectory[0].Benchmarks["BenchmarkOld"].NsPerOp != 100 {
		t.Fatalf("legacy conversion = %+v", trajectory)
	}
	if trajectory[0].Meta.Note != preMetadataNote {
		t.Errorf("legacy record note = %q, want %q", trajectory[0].Meta.Note, preMetadataNote)
	}

	// Append a second record and reload: both survive, in order.
	trajectory = append(trajectory, Record{
		Meta:       collectMeta("test"),
		Benchmarks: map[string]Entry{"BenchmarkNew": {Iterations: 7, NsPerOp: 50}},
	})
	buf, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	reloaded, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != 2 {
		t.Fatalf("trajectory length = %d, want 2", len(reloaded))
	}
	if reloaded[1].Meta.Note != "test" || reloaded[1].Meta.GOMAXPROCS == 0 {
		t.Errorf("meta not preserved: %+v", reloaded[1].Meta)
	}
	if _, err := loadTrajectory(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Errorf("missing file should be empty trajectory, got %v", err)
	}
}

// TestTagLegacy covers the metadata-less record tagging: array records
// written before Meta existed gain the pre-metadata note, annotated
// records stay untouched.
func TestTagLegacy(t *testing.T) {
	in := []Record{
		{Benchmarks: map[string]Entry{"BenchmarkA": {Iterations: 1, NsPerOp: 1}}},
		{Meta: Meta{Date: "2026-08-05T20:29:29Z", NumCPU: 1}},
		{Meta: Meta{Note: "hand-annotated"}},
	}
	out := tagLegacy(in)
	if out[0].Meta.Note != preMetadataNote {
		t.Errorf("bare record note = %q, want %q", out[0].Meta.Note, preMetadataNote)
	}
	if out[1].Meta.Note != "" {
		t.Errorf("dated record gained note %q", out[1].Meta.Note)
	}
	if out[2].Meta.Note != "hand-annotated" {
		t.Errorf("annotated record note changed to %q", out[2].Meta.Note)
	}
}

func TestParseServingLine(t *testing.T) {
	// cmd/hmmmload emits bench-format lines with custom serving units;
	// everything beyond the standard ns/op must survive in Extra.
	name, e, ok := parseBenchLine(
		"BenchmarkServing/coalesce=on 6400 11380000 ns/op 11370000 p50-ns/op 17573000 p95-ns/op " +
			"20415000 p99-ns/op 20357000 cheap-p99-ns/op 1593.70 goodput-qps 1600.00 offered-qps " +
			"0.0000 shed-rate 0.4914 coalesce-hit-rate")
	if !ok {
		t.Fatal("serving line not parsed")
	}
	if name != "BenchmarkServing/coalesce=on" {
		t.Errorf("name = %q", name)
	}
	if e.Iterations != 6400 || e.NsPerOp != 11380000 {
		t.Errorf("entry = %+v", e)
	}
	want := map[string]float64{
		"p50-ns/op":         11370000,
		"p95-ns/op":         17573000,
		"p99-ns/op":         20415000,
		"cheap-p99-ns/op":   20357000,
		"goodput-qps":       1593.70,
		"offered-qps":       1600.00,
		"shed-rate":         0,
		"coalesce-hit-rate": 0.4914,
	}
	for unit, v := range want {
		if e.Extra[unit] != v {
			t.Errorf("extra[%q] = %v, want %v", unit, e.Extra[unit], v)
		}
	}
}

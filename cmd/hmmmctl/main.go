// Command hmmmctl is the CLI client for an hmmmd retrieval server: the
// scriptable stand-in for the paper's Figure-5 query interface.
//
// Usage:
//
//	hmmmctl [-server URL] <command> [args]
//
// Commands:
//
//	stats                      model, feedback-log, and runtime statistics
//	                           (QPS, latency percentiles, cache hit rate,
//	                           inflight, model generation, pending feedback)
//	metrics                    dump the raw Prometheus /metrics text
//	events                     list the event taxonomy
//	videos                     list archive videos and their events
//	query  <pattern> [flags]   run an MATN temporal pattern query, e.g.
//	                           hmmmctl query "goal -> free_kick" -k 5
//	                           add -domains all (or basketball,news) to
//	                           fan the pattern over the server's
//	                           federation of per-domain archives
//	parse <pattern>            validate an MATN pattern and show its network
//	state <index>              inspect one model state (annotated shot)
//	rank <pattern>             rank videos for a pattern
//	similar <video-id>         list videos similar to the given one
//	feedback <state> [...]     mark a retrieved pattern positive by its
//	                           state indices (from query output)
//	retrain                    force offline retraining now
//	ingest [flags]             submit one synthetic video for live ingest
//	                           (server must run with -ingest), e.g.
//	                           hmmmctl ingest -name cam7 -seed 42 \
//	                             -events goal,none,corner_kick
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/videodb/hmmm/internal/api"
	"github.com/videodb/hmmm/internal/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmmctl: ")

	serverURL := flag.String("server", "http://localhost:8077", "hmmmd base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	cl := client.New(*serverURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var err error
	switch args[0] {
	case "stats":
		err = runStats(ctx, cl)
	case "metrics":
		err = runMetrics(ctx, cl)
	case "events":
		err = runEvents(ctx, cl)
	case "videos":
		err = runVideos(ctx, cl)
	case "query":
		err = runQuery(ctx, cl, args[1:])
	case "parse":
		err = runParse(ctx, cl, args[1:])
	case "state":
		err = runState(ctx, cl, args[1:])
	case "rank":
		err = runRank(ctx, cl, args[1:])
	case "similar":
		err = runSimilar(ctx, cl, args[1:])
	case "feedback":
		err = runFeedback(ctx, cl, args[1:])
	case "retrain":
		err = runRetrain(ctx, cl)
	case "ingest":
		err = runIngest(ctx, cl, args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: hmmmctl [-server URL] <command> [args]

commands:
  stats                    model, feedback-log, and runtime statistics
  metrics                  dump the raw Prometheus /metrics text
  events                   list the event taxonomy
  videos                   list archive videos and their events
  query <pattern> [flags]  run an MATN query ("goal -> free_kick")
      -k int      top K results (default 10)
      -beam int   beam width (default 4)
      -cross      allow cross-video patterns
      -similar    admit unannotated similar shots
      -video int  restrict to one video ID
      -from-ms / -to-ms   restrict to a time window
  parse <pattern>          validate an MATN pattern, show its network
  state <index>            inspect one model state
  rank <pattern>           rank videos for a pattern (level-2 matrices)
  similar <video-id>       videos similar to the given one
  feedback <state>...      mark a pattern positive by state indices
  retrain                  force offline retraining
  ingest [flags]           submit one synthetic video for live ingest
      -name string   video name (required)
      -seed uint     renderer seed (default 1)
      -events list   comma-separated shot events, "none" for plain play
                     (default "none,goal,none")
      -shot-ms int   rendered shot duration in ms (default 3000)
`)
}

func runStats(ctx context.Context, cl *client.Client) error {
	st, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	renderStats(os.Stdout, st)
	return nil
}

// renderStats prints the stats report. Sections a server does not
// report — older binaries predating lanes/coalesce/shards, local
// servers with no coordinator — are omitted entirely rather than
// rendered as zero-valued blocks, so `hmmmctl stats` stays honest
// against every server version during a rolling rollout.
func renderStats(w io.Writer, st *api.StatsResponse) {
	fmt.Fprintf(w, "videos:            %d\n", st.Videos)
	fmt.Fprintf(w, "states:            %d\n", st.States)
	fmt.Fprintf(w, "concepts:          %d\n", st.Concepts)
	fmt.Fprintf(w, "features:          %d\n", st.Features)
	fmt.Fprintf(w, "distinct patterns: %d\n", st.DistinctPatterns)
	fmt.Fprintf(w, "pending feedback:  %d\n", st.PendingFeedback)
	if rt := st.Runtime; rt != nil {
		fmt.Fprintf(w, "runtime:\n")
		fmt.Fprintf(w, "  uptime:           %.0fs\n", rt.UptimeSeconds)
		fmt.Fprintf(w, "  requests:         %d (%.2f qps)\n", rt.Requests, rt.QPS)
		fmt.Fprintf(w, "  query latency:    p50=%.2fms p95=%.2fms p99=%.2fms\n",
			rt.QueryP50MS, rt.QueryP95MS, rt.QueryP99MS)
		fmt.Fprintf(w, "  sim cache hits:   %.1f%%\n", rt.SimCacheHitRate*100)
		fmt.Fprintf(w, "  inflight:         %d\n", rt.Inflight)
		fmt.Fprintf(w, "  shed / panics:    %d / %d\n", rt.Shed, rt.Panics)
		fmt.Fprintf(w, "  slow / truncated: %d / %d\n", rt.SlowQueries, rt.TruncatedQueries)
		fmt.Fprintf(w, "  model generation: %d\n", rt.ModelGeneration)
		fmt.Fprintf(w, "  retrains:         %d (%d failed)\n", rt.Retrains, rt.RetrainFailures)
		fmt.Fprintf(w, "  persist failures: %d\n", rt.PersistFailures)
		// A server predating coalescing reports no counters at all (all
		// zero after decode); one with coalescing off reports zeros too.
		// Either way there is nothing to say.
		if rt.CoalesceRequests > 0 {
			fmt.Fprintf(w, "  coalesce:         %.1f%% hit rate (%d of %d requests rode an in-flight query)\n",
				rt.CoalesceHitRate*100, rt.CoalesceHits, rt.CoalesceRequests)
		}
		if l := rt.Lanes; l != nil {
			fmt.Fprintf(w, "  lanes (fast at cost <= %d):\n", l.FastLaneCost)
			fmt.Fprintf(w, "    fast:  %d/%d in flight, %d admitted, %d shed\n",
				l.Fast.Inflight, l.Fast.Capacity, l.Fast.Admitted, l.Fast.Shed)
			fmt.Fprintf(w, "    heavy: %d/%d in flight, %d/%d queued, %d admitted, %d shed\n",
				l.Heavy.Inflight, l.Heavy.Capacity, l.Heavy.Queued, l.Heavy.QueueCap,
				l.Heavy.Admitted, l.Heavy.Shed)
		}
	}
	if len(st.Shards) > 0 {
		fmt.Fprintf(w, "shards:\n")
		for _, sh := range st.Shards {
			fmt.Fprintf(w, "  shard %-2d %3d videos, %5d states\n", sh.Shard, sh.Videos, sh.States)
		}
	}
	if ig := st.Ingest; ig != nil {
		fmt.Fprintf(w, "live ingest:\n")
		fmt.Fprintf(w, "  accepted / rejected: %d / %d\n", ig.Accepted, ig.Rejected)
		fmt.Fprintf(w, "  fresh videos:        %d (delta generation %d)\n", ig.FreshVideos, ig.DeltaGeneration)
		fmt.Fprintf(w, "  journal records:     %d (%d persist failures)\n", ig.JournalRecords, ig.PersistFailures)
		if ig.Replayed+ig.ReplaySkipped > 0 {
			fmt.Fprintf(w, "  boot replay:         %d replayed, %d already compacted\n", ig.Replayed, ig.ReplaySkipped)
		}
		fmt.Fprintf(w, "  compactions:         %d (%d failed)", ig.Compactions, ig.CompactFailures)
		if ig.CompactAfter > 0 {
			fmt.Fprintf(w, ", fold at %d fresh", ig.CompactAfter)
		}
		if ig.LastCompactUnixMS > 0 {
			fmt.Fprintf(w, ", last %s", time.UnixMilli(ig.LastCompactUnixMS).UTC().Format(time.RFC3339))
		}
		fmt.Fprintln(w)
	}
	if c := st.Coord; c != nil {
		fmt.Fprintf(w, "coordinator (%d remote shards):\n", c.Shards)
		fmt.Fprintf(w, "  queries:          %d (%d degraded)\n", c.Queries, c.DegradedQueries)
		fmt.Fprintf(w, "  retries / hedges: %d / %d (%d hedge wins)\n", c.Retries, c.Hedges, c.HedgeWins)
		fmt.Fprintf(w, "  ejections:        %d (%d readmitted)\n", c.Ejections, c.Readmissions)
		fmt.Fprintf(w, "  gen conflicts:    %d\n", c.GenConflicts)
		for _, ep := range c.Endpoints {
			fmt.Fprintf(w, "  shard %-2d %-21s %-8s gen=%d", ep.Shard, ep.Addr, ep.State, ep.Generation)
			if ep.ConsecutiveErrors > 0 {
				fmt.Fprintf(w, " consecutive_errors=%d", ep.ConsecutiveErrors)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "events:\n")
	for name, n := range st.EventCounts {
		fmt.Fprintf(w, "  %-14s %d\n", name, n)
	}
}

func runMetrics(ctx context.Context, cl *client.Client) error {
	text, err := cl.MetricsText(ctx)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func runEvents(ctx context.Context, cl *client.Client) error {
	events, err := cl.Events(ctx)
	if err != nil {
		return err
	}
	for _, e := range events {
		fmt.Println(e)
	}
	return nil
}

func runVideos(ctx context.Context, cl *client.Client) error {
	videos, err := cl.Videos(ctx)
	if err != nil {
		return err
	}
	for _, v := range videos {
		parts := make([]string, 0, len(v.EventCounts))
		for name, n := range v.EventCounts {
			parts = append(parts, fmt.Sprintf("%s:%d", name, n))
		}
		fmt.Printf("video %-3d states=%-3d %s\n", v.ID, v.States, strings.Join(parts, " "))
	}
	return nil
}

func runQuery(ctx context.Context, cl *client.Client, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	topK := fs.Int("k", 10, "top K results")
	beam := fs.Int("beam", 4, "beam width")
	cross := fs.Bool("cross", false, "allow cross-video patterns")
	similar := fs.Bool("similar", false, "admit unannotated similar shots")
	scopeVideo := fs.Int("video", 0, "restrict to one video ID")
	scopeFrom := fs.Int("from-ms", 0, "restrict to shots starting at/after this time")
	scopeTo := fs.Int("to-ms", 0, "restrict to shots starting before this time (0 = end)")
	domains := fs.String("domains", "", "federated query: comma-separated federation members to ask ('all' = every member; server must run with -domains)")
	if len(args) == 0 {
		return fmt.Errorf("query: missing pattern argument")
	}
	pattern := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *domains != "" {
		return runFederatedQuery(ctx, cl, pattern, *domains, *topK)
	}

	start := time.Now()
	resp, err := cl.Query(ctx, api.QueryRequest{
		Pattern: pattern, TopK: *topK, Beam: *beam,
		CrossVideo: *cross, SimilarShots: *similar,
		ScopeVideo: *scopeVideo, ScopeFromMS: *scopeFrom, ScopeToMS: *scopeTo,
	})
	if err != nil {
		return err
	}
	fmt.Printf("pattern %q expanded to %d linear pattern(s); %d matches in %v\n",
		resp.Pattern, resp.Expanded, len(resp.Matches), time.Since(start).Round(time.Millisecond))
	fmt.Printf("cost: %d sim evals, %d edges, %d videos\n",
		resp.Cost.SimEvals, resp.Cost.EdgeEvals, resp.Cost.VideosSeen)
	if resp.FreshVideos > 0 {
		fmt.Printf("fresh: ranking includes %d live-ingested video(s) not yet compacted\n", resp.FreshVideos)
	}
	fmt.Println()
	for _, m := range resp.Matches {
		fmt.Printf("#%-2d score=%.4f states=%v\n", m.Rank, m.Score, m.States)
		for i := range m.Shots {
			fmt.Printf("    step %d: video %d shot %d [%s]\n",
				i+1, m.Videos[i], m.Shots[i], strings.Join(m.Events[i], ", "))
		}
	}
	if len(resp.Matches) > 0 {
		fmt.Printf("\nmark a result positive with: hmmmctl feedback %s\n",
			strings.Trim(strings.Join(strings.Fields(fmt.Sprint(resp.Matches[0].States)), " "), "[]"))
	}
	return nil
}

// runFederatedQuery executes one pattern across the server's federation
// of per-domain archives and prints the merged cross-domain ranking.
func runFederatedQuery(ctx context.Context, cl *client.Client, pattern, domains string, topK int) error {
	req := api.FederatedQueryRequest{Pattern: pattern, TopK: topK}
	if domains != "all" {
		req.Domains = strings.Split(domains, ",")
	}
	start := time.Now()
	resp, err := cl.QueryFederated(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("pattern %q across %d member(s); %d merged matches in %v\n",
		resp.Pattern, len(resp.Members), len(resp.Matches), time.Since(start).Round(time.Millisecond))
	for _, m := range resp.Members {
		switch {
		case m.Skipped:
			fmt.Printf("  %-12s skipped: %s\n", m.Name, m.Reason)
		default:
			fmt.Printf("  %-12s %d match(es), best raw score %.4f (%d sim evals)\n",
				m.Name, m.Matches, m.MaxScore, m.Cost.SimEvals)
		}
	}
	if resp.Normalized {
		fmt.Println("scores normalized to each member's best (cross-model scores are not directly comparable)")
	}
	fmt.Println()
	for _, m := range resp.Matches {
		fmt.Printf("#%-2d [%s] score=%.4f videos=%v shots=%v\n",
			m.Rank, m.Domain, m.Score, m.Videos, m.Shots)
	}
	return nil
}

func runParse(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("parse: missing pattern argument")
	}
	out, err := cl.Parse(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("pattern: %s\n", out.Pattern)
	fmt.Printf("network: %s (%d states, %d arcs)\n", out.Network, out.States, out.Arcs)
	fmt.Printf("expands to %d linear pattern(s):\n", len(out.Expanded))
	for _, e := range out.Expanded {
		fmt.Printf("  %s\n", e)
	}
	return nil
}

func runState(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("state: missing state index")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("state: bad index %q", args[0])
	}
	st, err := cl.State(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("state %d: shot %d of video %d, start %dms\n", st.State, st.Shot, st.Video, st.StartMS)
	fmt.Printf("events: %s\n", strings.Join(st.Events, ", "))
	fmt.Printf("pi1:    %.6f\n", st.Pi)
	fmt.Printf("b1:     %.3f\n", st.B1)
	return nil
}

func runRank(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("rank: missing pattern argument")
	}
	resp, err := cl.RankVideos(ctx, args[0], 10)
	if err != nil {
		return err
	}
	for i, v := range resp.Videos {
		fmt.Printf("#%-2d video %-3d score=%.6f\n", i+1, v.Video, v.Score)
	}
	return nil
}

func runSimilar(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("similar: missing video id")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("similar: bad video id %q", args[0])
	}
	resp, err := cl.SimilarVideos(ctx, id)
	if err != nil {
		return err
	}
	for i, v := range resp.Videos {
		fmt.Printf("#%-2d video %-3d score=%.4f\n", i+1, v.Video, v.Score)
	}
	return nil
}

func runFeedback(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("feedback: missing state indices")
	}
	states := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return fmt.Errorf("feedback: bad state index %q", a)
		}
		states[i] = v
	}
	resp, err := cl.Feedback(ctx, states)
	if err != nil {
		return err
	}
	fmt.Printf("recorded; pending=%d retrained=%v\n", resp.Pending, resp.Retrained)
	return nil
}

func runIngest(ctx context.Context, cl *client.Client, args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	name := fs.String("name", "", "video name (required)")
	seed := fs.Uint64("seed", 1, "renderer seed")
	events := fs.String("events", "none,goal,none", "comma-separated shot events")
	shotMS := fs.Int("shot-ms", 0, "rendered shot duration in ms (0 = server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("ingest: -name is required")
	}
	resp, err := cl.Ingest(ctx, api.IngestRequest{
		Name:   *name,
		Seed:   *seed,
		Events: strings.Split(*events, ","),
		ShotMS: *shotMS,
	})
	if err != nil {
		return err
	}
	fmt.Printf("accepted: video %d, %d shots (%d auto-annotated)\n",
		resp.VideoID, resp.Shots, resp.AutoAnnotated)
	fmt.Printf("serving now from delta generation %d (model generation %d, %d fresh video(s))\n",
		resp.DeltaGeneration, resp.ModelGeneration, resp.FreshVideos)
	fmt.Printf("query it with: hmmmctl query <pattern> -video %d\n", resp.VideoID)
	return nil
}

func runRetrain(ctx context.Context, cl *client.Client) error {
	resp, err := cl.Retrain(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("retrained=%v pending=%d\n", resp.Retrained, resp.Pending)
	return nil
}

package main

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/videodb/hmmm/internal/api"
)

// TestRenderStatsOmitsMissingSections decodes a stats payload as an old
// server would send it — no runtime lanes, no coalesce counters, no
// shards, no coord — and checks the report omits those blocks instead
// of printing them zero-valued. During a rolling rollout one hmmmctl
// speaks to binaries of several ages; a zero-valued "lanes" block on a
// server that has no lanes reads as an outage that isn't happening.
func TestRenderStatsOmitsMissingSections(t *testing.T) {
	old := `{
		"videos": 5, "states": 50, "concepts": 14, "features": 12,
		"distinct_patterns": 0, "pending_feedback": 0,
		"event_counts": {"goal": 3},
		"runtime": {
			"uptime_seconds": 10, "requests": 4, "qps": 0.4,
			"query_p50_ms": 1, "query_p95_ms": 2, "query_p99_ms": 3,
			"sim_cache_hit_rate": 0.5, "inflight": 0, "shed": 0,
			"panics": 0, "slow_queries": 0, "truncated_queries": 0,
			"model_generation": 1, "retrains": 0, "retrain_failures": 0,
			"persist_failures": 0
		}
	}`
	var st api.StatsResponse
	if err := json.Unmarshal([]byte(old), &st); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	renderStats(&b, &st)
	out := b.String()
	for _, banned := range []string{"lanes", "coalesce", "shards:", "coordinator"} {
		if strings.Contains(out, banned) {
			t.Errorf("old-server stats render contains %q block:\n%s", banned, out)
		}
	}
	for _, wanted := range []string{"videos:", "runtime:", "model generation: 1", "events:"} {
		if !strings.Contains(out, wanted) {
			t.Errorf("stats render missing %q:\n%s", wanted, out)
		}
	}
}

// TestRenderStatsShowsPresentSections is the other direction: a new
// server reporting every section gets every block rendered.
func TestRenderStatsShowsPresentSections(t *testing.T) {
	st := &api.StatsResponse{
		Videos: 5, States: 50,
		EventCounts: map[string]int{"goal": 3},
		Runtime: &api.RuntimeStatsJSON{
			CoalesceRequests: 10, CoalesceHits: 4, CoalesceHitRate: 0.4,
			Lanes: &api.LanesJSON{FastLaneCost: 1000},
		},
		Shards: []api.ShardStatsJSON{{Shard: 0, Videos: 3, States: 30}, {Shard: 1, Videos: 2, States: 20}},
		Coord: &api.CoordStatsJSON{
			Shards: 2, Queries: 7, DegradedQueries: 1, Retries: 2,
			Endpoints: []api.CoordEndpointJSON{
				{Shard: 0, Addr: "127.0.0.1:9000", State: "healthy", Generation: 1},
				{Shard: 1, Addr: "127.0.0.1:9001", State: "ejected", ConsecutiveErrors: 3},
			},
		},
	}
	var b strings.Builder
	renderStats(&b, st)
	out := b.String()
	for _, wanted := range []string{
		"coalesce:", "lanes (fast at cost <= 1000)", "shards:",
		"coordinator (2 remote shards)", "ejected", "consecutive_errors=3",
	} {
		if !strings.Contains(out, wanted) {
			t.Errorf("full stats render missing %q:\n%s", wanted, out)
		}
	}
}
